// Benchmarks regenerating every table and figure of the paper at
// testing.B scale (one benchmark per table/figure; the full-scale series
// come from cmd/crackbench, which prints the actual rows).
//
// Each benchmark iteration executes one complete (algorithm × workload)
// cell — data build, index build, Q queries — so ns/op is the cell's total
// cost; tuples-touched per query is reported as a custom metric, the
// paper's machine-independent cost measure.
package crackdb_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/updates"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// benchConfig is the testing.B scale: big enough that piece-size
// thresholds (L1/L2) still matter, small enough for -bench=. to finish.
func benchConfig() bench.Config {
	return bench.Config{N: 100_000, Q: 200, S: 10, Seed: 42}
}

// runCell executes one (algorithm × workload) cell per iteration.
func runCell(b *testing.B, cfg bench.Config, spec, wl string) {
	b.Helper()
	var lastTouched int64
	for i := 0; i < b.N; i++ {
		s, err := bench.Run(cfg, spec, wl)
		if err != nil {
			b.Fatal(err)
		}
		lastTouched = s.Final.Touched
	}
	b.ReportMetric(float64(lastTouched)/float64(cfg.Q), "tuples/query")
}

// cells runs a grid of sub-benchmarks.
func cells(b *testing.B, cfg bench.Config, workloads, specs []string) {
	for _, wl := range workloads {
		for _, spec := range specs {
			b.Run(wl+"/"+spec, func(b *testing.B) { runCell(b, cfg, spec, wl) })
		}
	}
}

// BenchmarkFig02 — basic cracking performance: Scan vs Crack vs Sort on
// the random and sequential workloads (Fig. 2 a-e; the touched metric is
// Fig. 2(e)).
func BenchmarkFig02(b *testing.B) {
	cells(b, benchConfig(), []string{"random", "sequential"}, []string{"scan", "crack", "sort"})
}

// BenchmarkFig08 — DDC piece-size threshold sweep on the sequential
// workload (Fig. 8's table).
func BenchmarkFig08(b *testing.B) {
	cfg := benchConfig()
	for _, th := range []struct {
		label string
		size  int
	}{{"L1_4", 1024}, {"L1_2", 2048}, {"L1", 4096}, {"L2", 32768}, {"3L2", 98304}} {
		b.Run(th.label, func(b *testing.B) {
			data := bench.MakeData(cfg.N, cfg.Seed)
			gen, err := workload.New("sequential", workload.Params{N: cfg.N, Q: cfg.Q, S: cfg.S, Seed: cfg.Seed})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				ix := core.NewDDC(append([]int64(nil), data...), core.Options{Seed: cfg.Seed, CrackSize: th.size})
				if _, err := bench.RunIndex(cfg, ix, gen, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig09 — stochastic cracking variants on the sequential
// workload (Fig. 9 a-c).
func BenchmarkFig09(b *testing.B) {
	cells(b, benchConfig(), []string{"sequential"},
		[]string{"sort", "crack", "ddc", "ddr", "dd1c", "dd1r",
			"pmdd1r-100", "pmdd1r-50", "pmdd1r-10", "pmdd1r-1"})
}

// BenchmarkFig10 — the same variants on the random workload (Fig. 10).
func BenchmarkFig10(b *testing.B) {
	cells(b, benchConfig(), []string{"random"},
		[]string{"sort", "ddc", "dd1c", "ddr", "dd1r", "pmdd1r-50", "crack"})
}

// BenchmarkFig11 — selectivity sweep (Fig. 11's table): selectivity as a
// fraction of N over both workloads for the table's five algorithms.
func BenchmarkFig11(b *testing.B) {
	cfg := benchConfig()
	for _, wl := range []string{"random", "sequential"} {
		for _, sel := range []struct {
			label string
			s     int64
		}{{"sel1e-4", 10}, {"sel1pct", 1000}, {"sel10pct", 10000}, {"sel50pct", 50000}} {
			for _, spec := range []string{"scan", "sort", "crack", "dd1r", "pmdd1r-10"} {
				c := cfg
				c.S = sel.s
				b.Run(fmt.Sprintf("%s/%s/%s", wl, sel.label, spec), func(b *testing.B) {
					runCell(b, c, spec, wl)
				})
			}
		}
	}
}

// BenchmarkFig12 — naive random-query injection vs integrated stochastic
// cracking on the sequential workload (Fig. 12).
func BenchmarkFig12(b *testing.B) {
	cells(b, benchConfig(), []string{"sequential"},
		[]string{"crack", "r1crack", "r2crack", "r4crack", "r8crack", "pmdd1r-10"})
}

// BenchmarkFig13 — the four workloads of Fig. 13 under Sort, Crack and
// the default stochastic cracking (P10%).
func BenchmarkFig13(b *testing.B) {
	cells(b, benchConfig(), []string{"periodic", "zoomout", "zoomin", "zoominalt"},
		[]string{"sort", "crack", "pmdd1r-10"})
}

// BenchmarkFig14 — partition/merge hybrids and their stochastic variants
// on the sequential workload (Fig. 14).
func BenchmarkFig14(b *testing.B) {
	cells(b, benchConfig(), []string{"sequential"},
		[]string{"aics", "aicc", "crack", "aics1r", "aicc1r"})
}

// BenchmarkFig15 — updates: 10 random inserts per 10 queries interleaved
// with the sequential workload (Fig. 15).
func BenchmarkFig15(b *testing.B) {
	cfg := benchConfig()
	for _, spec := range []string{"crack", "pmdd1r-10"} {
		b.Run(spec, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := xrand.New(cfg.Seed + 99)
				_, err := bench.RunWithUpdates(cfg, spec, "sequential", func(q int, u *updates.Index) {
					if q%10 == 0 {
						for k := 0; k < 10; k++ {
							u.Insert(rng.Int63n(cfg.N))
						}
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16 — the synthetic SkyServer trace (Fig. 16a).
func BenchmarkFig16(b *testing.B) {
	cells(b, benchConfig(), []string{"skyserver"}, []string{"crack", "pmdd1r-10", "sort", "scan"})
}

// BenchmarkFig17 — every workload × the four strategies of Fig. 17's
// table (Scrack = MDD1R there).
func BenchmarkFig17(b *testing.B) {
	cfg := benchConfig()
	cfg.N = 50_000
	cfg.Q = 100
	cells(b, cfg, workload.Names(), []string{"crack", "mdd1r", "fiftyfifty", "flipcoin"})
}

// BenchmarkFig18 — selective stochastic cracking every X queries on the
// SkyServer trace (Fig. 18's table).
func BenchmarkFig18(b *testing.B) {
	cfg := benchConfig()
	for _, x := range []int{1, 2, 4, 8, 16, 32} {
		spec := fmt.Sprintf("every-%d", x)
		if x == 1 {
			spec = "mdd1r"
		}
		b.Run(fmt.Sprintf("X%d", x), func(b *testing.B) { runCell(b, cfg, spec, "skyserver") })
	}
}

// BenchmarkFig19 — monitored stochastic cracking with varying per-piece
// threshold on the SkyServer trace (Fig. 19's table).
func BenchmarkFig19(b *testing.B) {
	cfg := benchConfig()
	for _, x := range []int{1, 5, 10, 50, 100, 500} {
		b.Run(fmt.Sprintf("X%d", x), func(b *testing.B) {
			runCell(b, cfg, fmt.Sprintf("scrackmon-%d", x), "skyserver")
		})
	}
}

// BenchmarkFig20 — the summary tradeoff (Fig. 20): total cost vs
// initialization cost for DD1R and progressive variants.
func BenchmarkFig20(b *testing.B) {
	cells(b, benchConfig(), []string{"sequential"}, []string{"dd1r", "pmdd1r-5", "pmdd1r-10"})
}

// ---- Ablations (design choices called out in DESIGN.md §5) -------------

// BenchmarkAblationSizeSelective — the paper reports that falling back to
// original cracking below L1 is 2-3x slower than pure stochastic
// cracking on most workloads.
func BenchmarkAblationSizeSelective(b *testing.B) {
	cells(b, benchConfig(), []string{"sequential", "random"}, []string{"mdd1r", "sizeselective"})
}

// BenchmarkAblationScrackMonOverhead — per-piece counters (scrackmon-1)
// vs the equivalent counter-free continuous stochastic cracking (mdd1r).
func BenchmarkAblationScrackMonOverhead(b *testing.B) {
	cells(b, benchConfig(), []string{"skyserver"}, []string{"mdd1r", "scrackmon-1"})
}

// BenchmarkAblationSwapBudget — progressive swap budget sweep beyond the
// paper's three points.
func BenchmarkAblationSwapBudget(b *testing.B) {
	specs := []string{"pmdd1r-1", "pmdd1r-2", "pmdd1r-5", "pmdd1r-10", "pmdd1r-25", "pmdd1r-50", "pmdd1r-100"}
	cells(b, benchConfig(), []string{"sequential"}, specs)
}

// BenchmarkAblationCrackInThreeVsTwoPass — the first-query optimization:
// one three-way partition pass vs two two-way passes.
func BenchmarkAblationCrackInThreeVsTwoPass(b *testing.B) {
	vals := xrand.New(1).Perm(1 << 20)
	lo, hi := int64(1<<18), int64(3<<18)
	b.Run("crack-in-three", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := column.New(append([]int64(nil), vals...))
			b.StartTimer()
			c.CrackInThree(0, c.Len(), lo, hi)
		}
	})
	b.Run("two-crack-in-two", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := column.New(append([]int64(nil), vals...))
			b.StartTimer()
			p := c.CrackInTwo(0, c.Len(), lo)
			c.CrackInTwo(p, c.Len(), hi)
		}
	})
}

// BenchmarkAblationViewVsMaterialize — returning a view (Crack/Sort) vs
// materializing the result (Scan contract) on a converged index.
func BenchmarkAblationViewVsMaterialize(b *testing.B) {
	const n = 1 << 20
	ix := core.NewCrack(xrand.New(2).Perm(n), core.Options{Seed: 1})
	ix.Query(1000, 50_000) // converge the relevant cracks
	var dst []int64
	b.Run("view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := ix.Query(1000, 50_000)
			if res.Count() != 49_000 {
				b.Fatal("bad count")
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := ix.Query(1000, 50_000)
			dst = res.Materialize(dst[:0])
			if len(dst) != 49_000 {
				b.Fatal("bad count")
			}
		}
	})
}

// BenchmarkConvergedQuery — steady-state point-range query latency across
// algorithms after 10^3 adaptation queries (the "flat part" of every
// cumulative curve).
func BenchmarkConvergedQuery(b *testing.B) {
	const n = 1 << 20
	for _, spec := range []string{"crack", "dd1r", "mdd1r", "pmdd1r-10", "sort"} {
		b.Run(spec, func(b *testing.B) {
			ix, err := core.Build(xrand.New(3).Perm(n), spec, core.Options{Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.New(4)
			for i := 0; i < 1000; i++ {
				a := rng.Int63n(n - 100)
				ix.Query(a, a+100)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := rng.Int63n(n - 100)
				if res := ix.Query(a, a+100); res.Count() != 100 {
					b.Fatal("bad count")
				}
			}
		})
	}
}
