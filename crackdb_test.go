package crackdb_test

import (
	"sync"
	"testing"

	crackdb "repro"
)

func TestQuickstartFlow(t *testing.T) {
	data := crackdb.MakeData(100_000, 1)
	ix, err := crackdb.New(data, crackdb.DD1R, crackdb.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	res := ix.Query(1000, 2000)
	if res.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", res.Count())
	}
	var want int64
	for v := int64(1000); v < 2000; v++ {
		want += v
	}
	if res.Sum() != want {
		t.Fatalf("sum = %d, want %d", res.Sum(), want)
	}
	if ix.Pieces() < 2 {
		t.Fatal("query did not crack the column")
	}
	if ix.Name() != "dd1r" {
		t.Fatalf("name = %q", ix.Name())
	}
}

func TestAllFacadeAlgorithms(t *testing.T) {
	for _, spec := range crackdb.Algorithms() {
		ix, err := crackdb.New(crackdb.MakeData(10_000, 2), spec, crackdb.WithSeed(3))
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		res := ix.Query(100, 400)
		if res.Count() != 300 {
			t.Fatalf("%s: count = %d, want 300", spec, res.Count())
		}
	}
	if _, err := crackdb.New(nil, "not-an-algorithm"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestFacadeOptions(t *testing.T) {
	ix, err := crackdb.New(crackdb.MakeData(50_000, 3), "pmdd1r-1",
		crackdb.WithSeed(11), crackdb.WithCrackSize(128),
		crackdb.WithProgressiveSize(1024), crackdb.WithSwapBudget(5),
		crackdb.WithRowIDs())
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.Query(10, 20); res.Count() != 10 {
		t.Fatalf("count = %d", res.Count())
	}
	h, err := crackdb.New(crackdb.MakeData(10_000, 4), crackdb.AICC1R,
		crackdb.WithPartitions(5))
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Query(0, 100); res.Count() != 100 {
		t.Fatal("hybrid with custom partitions failed")
	}
}

func TestFacadeUpdates(t *testing.T) {
	ix, err := crackdb.New(crackdb.MakeData(10_000, 5), crackdb.Crack)
	if err != nil {
		t.Fatal(err)
	}
	ix.Query(2000, 3000)
	if err := ix.Insert(2500); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(2600); err != nil {
		t.Fatal(err)
	}
	if ix.PendingUpdates() != 2 {
		t.Fatalf("pending = %d", ix.PendingUpdates())
	}
	res := ix.Query(2400, 2700)
	if res.Count() != 300 { // +1 insert, -1 delete
		t.Fatalf("count after updates = %d, want 300", res.Count())
	}
	if ix.PendingUpdates() != 0 {
		t.Fatal("updates not merged")
	}

	srt, err := crackdb.New(crackdb.MakeData(1000, 6), crackdb.Sort)
	if err != nil {
		t.Fatal(err)
	}
	if err := srt.Insert(5); err == nil {
		t.Fatal("sort accepted an update")
	}
	hyb, err := crackdb.New(crackdb.MakeData(1000, 6), crackdb.AICS)
	if err != nil {
		t.Fatal(err)
	}
	if err := hyb.Insert(5); err == nil {
		t.Fatal("hybrid accepted an update")
	}
	if hyb.PendingUpdates() != 0 {
		t.Fatal("hybrid pending should be 0")
	}
}

func TestSynchronizedFacade(t *testing.T) {
	for _, spec := range []string{crackdb.MDD1R, crackdb.AICS} {
		ix, err := crackdb.New(crackdb.MakeData(50_000, 7), spec, crackdb.WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		ci := ix.Synchronized()
		var wg sync.WaitGroup
		bad := make(chan int, 16)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					a := int64((g*1000 + i*37) % 49000)
					vals := ci.Query(a, a+100)
					if len(vals) != 100 {
						bad <- len(vals)
						return
					}
					c, _ := ci.QueryAggregate(a, a+100)
					if c != 100 {
						bad <- c
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(bad)
		for b := range bad {
			t.Fatalf("%s: bad concurrent result size %d", spec, b)
		}
		if ci.Stats().Queries == 0 {
			t.Fatal("no queries recorded")
		}
	}
}

func TestWorkloadFacade(t *testing.T) {
	if len(crackdb.Workloads()) != 15 {
		t.Fatalf("workloads = %d, want 15", len(crackdb.Workloads()))
	}
	g, err := crackdb.NewWorkload("sequential", crackdb.WorkloadParams{N: 10_000, Q: 100, S: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := crackdb.New(crackdb.MakeData(10_000, 8), crackdb.PMDD1R)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		lo, hi := g.Next()
		res := ix.Query(lo, hi)
		if int64(res.Count()) != hi-lo {
			t.Fatalf("query %d [%d,%d): count %d", i, lo, hi, res.Count())
		}
	}
	if _, err := crackdb.NewWorkload("unknown", crackdb.WorkloadParams{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestStatsExposure(t *testing.T) {
	ix, err := crackdb.New(crackdb.MakeData(10_000, 9), crackdb.Crack)
	if err != nil {
		t.Fatal(err)
	}
	ix.Query(100, 200)
	s := ix.Stats()
	if s.Queries != 1 || s.Touched == 0 || s.Cracks == 0 {
		t.Fatalf("stats = %+v", s)
	}
}
