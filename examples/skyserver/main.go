// SkyServer replay: adaptive indexing under a realistic exploration trace.
//
// The paper's Fig. 16 replays 160k selection predicates from the Sloan
// Digital Sky Survey: astronomers scan one area of the sky at a time, so
// queries cluster in a narrow region for hundreds of queries, then jump.
// This example replays the repository's synthetic SkyServer trace (see
// DESIGN.md §4 for the substitution) against original and stochastic
// cracking and prints the cumulative-time series of Fig. 16(a) plus a
// text rendering of the access pattern of Fig. 16(b).
//
//	go run ./examples/skyserver
package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	crackdb "repro"
)

const (
	n = 4_000_000
	q = 8_000
)

func replay(algo string) []time.Duration {
	ctx := context.Background()
	db, err := crackdb.Open(crackdb.MakeData(n, 11), algo, crackdb.WithSeed(11))
	if err != nil {
		panic(err)
	}
	gen, err := crackdb.NewWorkload("skyserver", crackdb.WorkloadParams{N: n, Q: q, S: 10, Seed: 11})
	if err != nil {
		panic(err)
	}
	cum := make([]time.Duration, 0, q)
	var total time.Duration
	for i := 0; i < q; i++ {
		lo, hi := gen.Next()
		t0 := time.Now()
		if _, err := db.Query(ctx, crackdb.Range(lo, hi)); err != nil {
			panic(err)
		}
		total += time.Since(t0)
		cum = append(cum, total)
	}
	return cum
}

func main() {
	// Fig. 16(b): the access pattern. Render range midpoints as a strip
	// chart: one row per 500 queries, '*' marking the touched region.
	fmt.Println("access pattern (each row = 500 queries, columns = value domain):")
	gen, err := crackdb.NewWorkload("skyserver", crackdb.WorkloadParams{N: n, Q: q, S: 10, Seed: 11})
	if err != nil {
		panic(err)
	}
	const cols = 64
	row := make([]bool, cols)
	for i := 0; i < q; i++ {
		lo, hi := gen.Next()
		mid := (lo + hi) / 2
		row[int(mid*cols/n)] = true
		if (i+1)%500 == 0 {
			var b strings.Builder
			for _, hit := range row {
				if hit {
					b.WriteByte('*')
				} else {
					b.WriteByte('.')
				}
			}
			fmt.Printf("  q%5d  %s\n", i+1, b.String())
			row = make([]bool, cols)
		}
	}

	// Fig. 16(a): cumulative response time, original vs stochastic.
	fmt.Println("\ncumulative response time:")
	crack := replay(crackdb.Crack)
	scrack := replay(crackdb.PMDD1R)
	fmt.Printf("%10s %14s %14s\n", "query", "crack", "scrack(P10%)")
	for _, c := range []int{100, 500, 1000, 2000, 4000, 8000} {
		fmt.Printf("%10d %14v %14v\n", c, crack[c-1].Round(time.Millisecond), scrack[c-1].Round(time.Millisecond))
	}
	fmt.Println("\npaper shape (Fig. 16a): original cracking keeps paying for the large")
	fmt.Println("unindexed areas each campaign leaves behind; stochastic cracking answers")
	fmt.Println("the entire trace within a small, flat time budget.")
}
