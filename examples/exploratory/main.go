// Exploratory analysis: the paper's motivating scenario.
//
// A scientist explores a dataset region by region — the "sequential"
// workload of Fig. 2/7 — the pathological case for original database
// cracking: every query re-scans the huge unindexed remainder. Stochastic
// cracking answers the same exploration orders of magnitude cheaper while
// keeping cracking's instant-availability property (no offline build).
//
// This example reproduces the paper's headline comparison (Fig. 9) at a
// laptop-friendly scale, printing cumulative cost after each decade of
// queries for original cracking, stochastic cracking, a full sort and a
// plain scan — all through the same crackdb.DB front door; only the
// algorithm string changes.
//
//	go run ./examples/exploratory
package main

import (
	"context"
	"fmt"
	"time"

	crackdb "repro"
)

const (
	n = 2_000_000
	q = 1_000
)

func runExploration(algo string) (time.Duration, int64) {
	ctx := context.Background()
	db, err := crackdb.Open(crackdb.MakeData(n, 1), algo, crackdb.WithSeed(3))
	if err != nil {
		panic(err)
	}
	// The sequential workload: consecutive queries ask for consecutive
	// ranges, scanning the value domain bottom to top.
	gen, err := crackdb.NewWorkload("sequential", crackdb.WorkloadParams{N: n, Q: q, S: 10, Seed: 3})
	if err != nil {
		panic(err)
	}
	var total time.Duration
	for i := 0; i < q; i++ {
		lo, hi := gen.Next()
		t0 := time.Now()
		res, err := db.Query(ctx, crackdb.Range(lo, hi))
		if err != nil {
			panic(err)
		}
		total += time.Since(t0)
		if res.Count() == 0 && hi > lo {
			_ = res // ranges at the domain edge can legitimately be empty
		}
	}
	return total, db.Stats().Touched
}

func main() {
	fmt.Printf("exploring %d tuples with %d consecutive range queries (sequential workload)\n\n", n, q)
	fmt.Printf("%-22s %14s %16s\n", "algorithm", "total time", "tuples touched")
	for _, algo := range []string{crackdb.Crack, crackdb.DD1R, crackdb.PMDD1R, crackdb.Sort, crackdb.Scan} {
		total, touched := runExploration(algo)
		fmt.Printf("%-22s %14v %16d\n", algo, total.Round(time.Microsecond), touched)
	}
	fmt.Println(`
What to look for (paper Fig. 9):
  - crack: touches ~N tuples per query; the exploration never gets faster.
  - dd1r / pmdd1r-10: random auxiliary cracks break the big piece early;
    total cost collapses by orders of magnitude.
  - sort: fast overall but the *first* query pays the entire sort - the
    exact burst adaptive indexing exists to avoid.
  - scan: the no-index baseline every adaptive method must beat.`)
}
