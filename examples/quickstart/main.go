// Quickstart: open an adaptive database, run predicate queries, watch it
// adapt.
//
// There is no index-building step: the first query costs about as much as
// a scan, and each query leaves the column a little more organized, so
// response times collapse within a handful of queries.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"time"

	crackdb "repro"
)

func main() {
	const n = 4_000_000
	ctx := context.Background()

	// The paper's dataset: a random permutation of the integers [0, n).
	// Any []int64 works; the database takes ownership and reorganizes it.
	data := crackdb.MakeData(n, 42)

	// DD1R — stochastic cracking with one random auxiliary crack per query
	// bound — is the paper's best all-round choice (Fig. 20). The default
	// concurrency mode is Single: zero-copy results, no locking; pass
	// crackdb.WithConcurrency(crackdb.Shared) and the same code serves
	// concurrent traffic.
	db, err := crackdb.Open(data, crackdb.DD1R, crackdb.WithSeed(7))
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-8s %-22s %12s %10s %10s\n", "query", "range", "latency", "rows", "pieces")
	for i := 0; i < 10; i++ {
		lo := int64(i) * 350_000
		hi := lo + 1_000

		t0 := time.Now()
		res, err := db.Query(ctx, crackdb.Range(lo, hi))
		if err != nil {
			panic(err)
		}
		dt := time.Since(t0)

		fmt.Printf("%-8d [%d, %d) %12v %10d %10d\n", i+1, lo, hi, dt, res.Count(), db.Stats().Pieces)
	}

	// Re-running the same ranges hits existing cracks: no reorganization,
	// just a tree lookup and a view — this is the "converged" performance
	// the paper compares against a full index.
	fmt.Println("\nsecond pass over the same ranges (index already adapted):")
	for i := 0; i < 10; i++ {
		lo := int64(i) * 350_000
		t0 := time.Now()
		res, err := db.Query(ctx, crackdb.Range(lo, lo+1_000))
		if err != nil {
			panic(err)
		}
		dt := time.Since(t0)
		if i < 3 || i == 9 {
			fmt.Printf("%-8d [%d, %d) %12v %10d\n", i+1, lo, lo+1_000, dt, res.Count())
		}
	}

	// Predicates translate SQL's comparison shapes, compose with And/Or,
	// and multi-range unions are answered as one batch under the hood.
	res, err := db.Query(ctx, crackdb.Between(1_000_000, 1_000_004).Or(crackdb.Eq(2_000_000)))
	if err != nil {
		panic(err)
	}
	fmt.Println("\nvalues in [1000000, 1000004] ∪ {2000000}:", res.Owned())

	// The database reports its physical work: tuples touched is the
	// paper's machine-independent cost metric.
	st := db.Stats()
	fmt.Printf("\nafter %d queries: touched %d tuples, %d cracks, %d pieces\n",
		st.Queries, st.Touched, st.Cracks, st.Pieces)
}
