// Quickstart: build an adaptive index, run range queries, watch it adapt.
//
// There is no index-building step: the first query costs about as much as
// a scan, and each query leaves the column a little more organized, so
// response times collapse within a handful of queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	crackdb "repro"
)

func main() {
	const n = 4_000_000

	// The paper's dataset: a random permutation of the integers [0, n).
	// Any []int64 works; the index takes ownership and reorganizes it.
	data := crackdb.MakeData(n, 42)

	// DD1R — stochastic cracking with one random auxiliary crack per query
	// bound — is the paper's best all-round choice (Fig. 20).
	ix, err := crackdb.New(data, crackdb.DD1R, crackdb.WithSeed(7))
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-8s %-22s %12s %10s %10s\n", "query", "range", "latency", "rows", "pieces")
	for i := 0; i < 10; i++ {
		lo := int64(i) * 350_000
		hi := lo + 1_000

		t0 := time.Now()
		res := ix.Query(lo, hi)
		dt := time.Since(t0)

		fmt.Printf("%-8d [%d, %d) %12v %10d %10d\n", i+1, lo, hi, dt, res.Count(), ix.Pieces())
	}

	// Re-running the same ranges hits existing cracks: no reorganization,
	// just a tree lookup and a view — this is the "converged" performance
	// the paper compares against a full index.
	fmt.Println("\nsecond pass over the same ranges (index already adapted):")
	for i := 0; i < 10; i++ {
		lo := int64(i) * 350_000
		t0 := time.Now()
		res := ix.Query(lo, lo+1_000)
		dt := time.Since(t0)
		if i < 3 || i == 9 {
			fmt.Printf("%-8d [%d, %d) %12v %10d\n", i+1, lo, lo+1_000, dt, res.Count())
		}
	}

	// Results are views plus materialized ends; copy out what you keep.
	res := ix.Query(1_000_000, 1_000_005)
	fmt.Println("\nvalues in [1000000, 1000005):", res.Materialize(nil))

	// The index reports its physical work: tuples touched is the paper's
	// machine-independent cost metric.
	st := ix.Stats()
	fmt.Printf("\nafter %d queries: touched %d tuples, %d cracks, %d pieces\n",
		st.Queries, st.Touched, st.Cracks, st.Pieces)
}
