// Updates: adaptive indexing under a live insert/delete stream.
//
// Cracking does not stop the world for maintenance. Updates queue as
// pending and are merged lazily — each query merges exactly the pending
// values that fall inside its range, using the Ripple reorganization of
// the paper's reference [17], which moves one tuple per column piece
// instead of rewriting the array (reproducing Fig. 15's setup: 10 random
// inserts arriving with every 10 queries).
//
// The same DB.Insert/DB.Delete calls work in every concurrency mode — a
// sharded database routes each value to the shard owning its range.
//
//	go run ./examples/updates
package main

import (
	"context"
	"fmt"
	"time"

	crackdb "repro"
)

const (
	n = 2_000_000
	q = 2_000
)

func main() {
	ctx := context.Background()
	db, err := crackdb.Open(crackdb.MakeData(n, 5), crackdb.PMDD1R, crackdb.WithSeed(5))
	if err != nil {
		panic(err)
	}
	queries, err := crackdb.NewWorkload("sequential", crackdb.WorkloadParams{N: n, Q: q, S: 1000, Seed: 5})
	if err != nil {
		panic(err)
	}
	inserts, err := crackdb.NewWorkload("random", crackdb.WorkloadParams{N: n, Q: q, S: 1, Seed: 99})
	if err != nil {
		panic(err)
	}

	var total time.Duration
	var inserted, matched int
	for i := 0; i < q; i++ {
		// Fig. 15's high-frequency low-volume stream: 10 random inserts
		// with every 10th query.
		if i%10 == 0 {
			for k := 0; k < 10; k++ {
				v, _ := inserts.Next()
				if err := db.Insert(v); err != nil {
					panic(err)
				}
				inserted++
			}
		}
		lo, hi := queries.Next()
		t0 := time.Now()
		res, err := db.Query(ctx, crackdb.Range(lo, hi))
		if err != nil {
			panic(err)
		}
		total += time.Since(t0)
		// On permutation data every value is unique, so any count above
		// the range width is a merged insert showing up in results.
		if extra := res.Count() - int(hi-lo); extra > 0 {
			matched += extra
		}
		if (i+1)%400 == 0 {
			fmt.Printf("after %5d queries: cumulative %8v, %5d inserts queued, %4d still pending\n",
				i+1, total.Round(time.Millisecond), inserted, db.PendingUpdates())
		}
	}

	st := db.Stats()
	fmt.Printf("\n%d inserts arrived; %d merged on demand, %d never touched by a query\n",
		inserted, inserted-db.PendingUpdates(), db.PendingUpdates())
	fmt.Printf("%d of them were returned by queries whose range covered them\n", matched)
	fmt.Printf("index state: %d pieces, %d tuples touched in total\n", st.Pieces, st.Touched)
	fmt.Println("\npaper shape (Fig. 15): the update stream does not disturb stochastic")
	fmt.Println("cracking's robustness - cumulative cost stays flat, because each merge")
	fmt.Println("moves one tuple per piece (Ripple) rather than rebuilding anything.")
}
