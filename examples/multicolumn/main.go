// Multi-column selection and projection: cracking at the attribute level.
//
// Cracking is applied per attribute (paper §2): a query reorganizes only
// the column its predicate touches. Projected attributes are
// reconstructed either late (via row ids, one random access per result
// tuple) or through sideways cracker maps (after [18]): the projected
// attribute's values physically travel with the selection attribute
// during cracking, so projection becomes a contiguous copy.
//
// The example models a tiny telescope catalog — right ascension,
// brightness, object id — first serving concurrent strip counts through
// the unified DB front door (predicates scoped with On, per-column
// executors), then running the astronomy query the paper's SkyServer
// discussion motivates — "brightness of all objects in this strip of the
// sky" — through both reconstruction strategies.
//
//	go run ./examples/multicolumn
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	crackdb "repro"
)

const n = 2_000_000

func catalog() map[string][]int64 {
	// ra is a shuffled dense domain standing in for right-ascension;
	// brightness and id are derived so results are easy to eyeball.
	ra := crackdb.MakeData(n, 21)
	brightness := make([]int64, n)
	objID := make([]int64, n)
	for i, v := range ra {
		brightness[i] = 1000 + v%500
		objID[i] = int64(i)
	}
	return map[string][]int64{"ra": ra, "brightness": brightness, "obj_id": objID}
}

var strips = []struct{ lo, hi int64 }{
	{100_000, 101_000},
	{100_200, 100_800}, // refining inside the previous strip
	{1_500_000, 1_502_000},
}

func main() {
	ctx := context.Background()

	// Part 1: the unified front door. A Shared table gives every selection
	// column its own adaptive executor; concurrent observers count strips
	// in parallel, and only the columns their predicates name are ever
	// indexed.
	db, err := crackdb.OpenTable(catalog(), crackdb.DD1R,
		crackdb.WithSeed(3), crackdb.WithConcurrency(crackdb.Shared))
	if err != nil {
		panic(err)
	}
	fmt.Printf("catalog: %d rows, columns %v\n\n", db.Rows(), db.Columns())
	var wg sync.WaitGroup
	counts := make([]int, len(strips))
	for i, s := range strips {
		wg.Add(1)
		go func(i int, lo, hi int64) {
			defer wg.Done()
			agg, err := db.QueryAggregate(ctx, crackdb.Range(lo, hi).On("ra"))
			if err != nil {
				panic(err)
			}
			counts[i] = agg.Count
		}(i, s.lo, s.hi)
	}
	wg.Wait()
	for i, s := range strips {
		fmt.Printf("strip [%7d,%7d): %5d objects (counted concurrently)\n", s.lo, s.hi, counts[i])
	}

	// Part 2: projection, two ways. The projection APIs live on the Table
	// handle (single-threaded); the selection column is cracked as a side
	// effect either way.
	tbl, err := crackdb.NewTable(catalog(), crackdb.DD1R, crackdb.WithSeed(3))
	if err != nil {
		panic(err)
	}
	fmt.Println()
	for _, s := range strips {
		t0 := time.Now()
		late, err := tbl.SelectProject("ra", "brightness", s.lo, s.hi)
		if err != nil {
			panic(err)
		}
		dLate := time.Since(t0)

		t0 = time.Now()
		side, err := tbl.SelectProjectSideways("ra", "brightness", s.lo, s.hi)
		if err != nil {
			panic(err)
		}
		dSide := time.Since(t0)

		var sumLate, sumSide int64
		for _, v := range late {
			sumLate += v
		}
		for _, v := range side {
			sumSide += v
		}
		if sumLate != sumSide || len(late) != len(side) {
			panic("reconstruction strategies disagree")
		}
		fmt.Printf("strip [%7d,%7d): %5d objects, mean brightness %d\n",
			s.lo, s.hi, len(late), sumLate/int64(len(late)))
		fmt.Printf("   late (row-id) reconstruction: %10v\n", dLate)
		fmt.Printf("   sideways cracker map:         %10v\n", dSide)
	}

	st := tbl.Stats()
	fmt.Printf("\ntable state: %d cracks across indexes and maps, %d tuples touched\n",
		st.Cracks, st.Touched)
	fmt.Println("\nonly the 'ra' index and the (ra->brightness) map were ever built or")
	fmt.Println("reorganized; 'obj_id' and unqueried attribute pairs cost nothing (§2:")
	fmt.Println("non-queried columns remain non-indexed).")
}
