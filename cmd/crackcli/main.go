// Command crackcli is an interactive shell for a cracking index: load or
// generate a column, run range queries against any algorithm, watch the
// index adapt, and persist the earned state.
//
// Usage:
//
//	crackcli -n 1000000 -algo dd1r
//	crackcli -file column.txt -algo pmdd1r-10
//
// Commands (one per line on stdin):
//
//	q <lo> <hi>        query the half-open range [lo, hi)
//	between <lo> <hi>  query the inclusive range [lo, hi]
//	insert <v>         queue an insertion (merged on demand)
//	delete <v>         queue a deletion (merged on demand)
//	stats              print physical-cost counters
//	pieces             print the piece-size summary and histogram
//	save <path>        snapshot the index state
//	help               list commands
//	quit               exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/colload"
	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/updates"
)

func main() {
	var (
		algo = flag.String("algo", "dd1r", "cracking algorithm")
		n    = flag.Int64("n", 1_000_000, "generated column size (ignored with -file)")
		seed = flag.Uint64("seed", 42, "random seed")
		file = flag.String("file", "", "load the column from a file")
		load = flag.String("snapshot", "", "resume from a snapshot file")
	)
	flag.Parse()

	ix, upd, err := buildIndex(*algo, *n, *seed, *file, *load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crackcli:", err)
		os.Exit(2)
	}
	eng := engineOf(ix)
	fmt.Printf("crackcli: %s over %d tuples; type 'help' for commands\n",
		ix.Name(), eng.Column().Len())

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "q", "query", "between":
			lo, hi, err := parseRange(fields)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if fields[0] == "between" {
				hi++
			}
			t0 := time.Now()
			res := upd.Query(lo, hi)
			dt := time.Since(t0)
			fmt.Printf("%d rows, sum %d, in %v (pieces now: %d)\n",
				res.Count(), res.Sum(), dt, ix.Stats().Pieces)
		case "insert", "delete":
			if len(fields) != 2 {
				fmt.Println("error: usage:", fields[0], "<v>")
				continue
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if fields[0] == "insert" {
				upd.Insert(v)
			} else {
				upd.Delete(v)
			}
			fmt.Printf("queued; %d updates pending\n", upd.Pending())
		case "stats":
			s := ix.Stats()
			fmt.Printf("queries=%d touched=%d swaps=%d cracks=%d pieces=%d pending-updates=%d\n",
				s.Queries, s.Touched, s.Swaps, s.Cracks, s.Pieces, upd.Pending())
		case "pieces":
			ps := stats.Compute(eng.CrackerIndex(), eng.Column().Len())
			fmt.Println(ps)
			fmt.Print(stats.Histogram(eng.CrackerIndex(), eng.Column().Len()))
		case "save":
			if len(fields) != 2 {
				fmt.Println("error: usage: save <path>")
				continue
			}
			if upd.Pending() > 0 {
				fmt.Println("error: merge pending updates first (query their ranges)")
				continue
			}
			if err := snapshot.SaveFile(fields[1], eng.Snapshot()); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("saved to", fields[1])
		case "help":
			fmt.Println("q <lo> <hi> | between <lo> <hi> | insert <v> | delete <v> | stats | pieces | save <path> | quit")
		case "quit", "exit":
			return
		default:
			fmt.Printf("error: unknown command %q (try 'help')\n", fields[0])
		}
	}
}

func buildIndex(algo string, n int64, seed uint64, file, snap string) (core.Index, *updates.Index, error) {
	var (
		ix  core.Index
		err error
	)
	switch {
	case snap != "":
		st, lerr := snapshot.LoadFile(snap)
		if lerr != nil {
			return nil, nil, lerr
		}
		ix, err = core.Restore(st, algo, core.Options{Seed: seed})
	case file != "":
		vals, lerr := colload.LoadFile(file)
		if lerr != nil {
			return nil, nil, lerr
		}
		ix, err = core.Build(vals, algo, core.Options{Seed: seed})
	default:
		ix, err = core.Build(bench.MakeData(n, seed), algo, core.Options{Seed: seed})
	}
	if err != nil {
		return nil, nil, err
	}
	upd, ok := updates.Wrap(ix)
	if !ok {
		return nil, nil, fmt.Errorf("algorithm %q is not engine-backed; crackcli needs one of the cracking algorithms", algo)
	}
	return ix, upd, nil
}

func engineOf(ix core.Index) *core.Engine {
	return ix.(interface{ Engine() *core.Engine }).Engine()
}

func parseRange(fields []string) (int64, int64, error) {
	if len(fields) != 3 {
		return 0, 0, fmt.Errorf("usage: %s <lo> <hi>", fields[0])
	}
	lo, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	hi, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}
