// Command crackcli is an interactive shell for an adaptive database: load
// or generate a column, run predicate queries against any algorithm in
// any concurrency mode, watch the index adapt, and persist the earned
// state. It speaks the public crackdb v2 API end to end — the same front
// door applications use.
//
// Usage:
//
//	crackcli -n 1000000 -algo dd1r
//	crackcli -file column.txt -algo pmdd1r-10 -mode shared
//	crackcli -n 4000000 -algo crack -mode sharded -shards 8
//
// Commands (one per line on stdin):
//
//	q <lo> <hi>        query the half-open range [lo, hi)
//	between <lo> <hi>  query the inclusive range [lo, hi]
//	or <lo> <hi> <lo> <hi> ...  query a union of half-open ranges
//	agg <lo> <hi>      count/sum [lo, hi) without materializing
//	insert <v>         queue an insertion (merged on demand)
//	delete <v>         queue a deletion (merged on demand)
//	stats              print physical-cost counters
//	pieces             print the piece-size summary and histogram
//	save <path>        snapshot the index state
//	help               list commands
//	quit               exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	crackdb "repro"
	"repro/internal/stats"
)

func main() {
	var (
		algo   = flag.String("algo", "dd1r", "cracking algorithm")
		n      = flag.Int64("n", 1_000_000, "generated column size (ignored with -file)")
		seed   = flag.Uint64("seed", 42, "random seed")
		file   = flag.String("file", "", "load the column from a file")
		load   = flag.String("snapshot", "", "resume from a snapshot file")
		mode   = flag.String("mode", "single", "concurrency mode: single, shared, sharded")
		shards = flag.Int("shards", 8, "shard count for -mode sharded")
	)
	flag.Parse()

	db, err := openDB(*algo, *n, *seed, *file, *load, *mode, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crackcli:", err)
		os.Exit(2)
	}
	ctx := context.Background()
	fmt.Printf("crackcli: %s (%s) over %d tuples; type 'help' for commands\n",
		db.Name(), db.Mode(), db.Rows())

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "q", "query", "between", "or":
			p, err := parsePredicate(fields)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			t0 := time.Now()
			res, err := db.Query(ctx, p)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			dt := time.Since(t0)
			fmt.Printf("%d rows, sum %d, in %v (pieces now: %d)\n",
				res.Count(), res.Sum(), dt, db.Stats().Pieces)
		case "agg":
			p, err := parsePredicate(append([]string{"q"}, fields[1:]...))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			t0 := time.Now()
			agg, err := db.QueryAggregate(ctx, p)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("count %d, sum %d, in %v\n", agg.Count, agg.Sum, time.Since(t0))
		case "insert", "delete":
			if len(fields) != 2 {
				fmt.Println("error: usage:", fields[0], "<v>")
				continue
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if fields[0] == "insert" {
				err = db.Insert(v)
			} else {
				err = db.Delete(v)
			}
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("queued; %d updates pending\n", db.PendingUpdates())
		case "stats":
			s := db.Stats()
			fmt.Printf("queries=%d touched=%d swaps=%d cracks=%d pieces=%d pending-updates=%d\n",
				s.Queries, s.Touched, s.Swaps, s.Cracks, s.Pieces, db.PendingUpdates())
		case "pieces":
			sizes, err := db.PieceSizes()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			total := 0
			for _, s := range sizes {
				total += s
			}
			fmt.Println(stats.FromSizes(sizes, total))
			fmt.Print(stats.HistogramSizes(sizes))
		case "save":
			if len(fields) != 2 {
				fmt.Println("error: usage: save <path>")
				continue
			}
			if err := db.SaveSnapshot(fields[1]); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("saved to", fields[1])
		case "help":
			fmt.Println("q <lo> <hi> | between <lo> <hi> | or <lo> <hi> [<lo> <hi>...] | agg <lo> <hi> | insert <v> | delete <v> | stats | pieces | save <path> | quit")
		case "quit", "exit":
			return
		default:
			fmt.Printf("error: unknown command %q (try 'help')\n", fields[0])
		}
	}
}

func openDB(algo string, n int64, seed uint64, file, snap, mode string, shards int) (*crackdb.DB, error) {
	opts := []crackdb.Option{crackdb.WithSeed(seed)}
	switch mode {
	case "single":
		opts = append(opts, crackdb.WithConcurrency(crackdb.Single))
	case "shared":
		opts = append(opts, crackdb.WithConcurrency(crackdb.Shared))
	case "sharded":
		opts = append(opts, crackdb.WithConcurrency(crackdb.Sharded(shards)))
	default:
		return nil, fmt.Errorf("unknown -mode %q (single, shared, sharded)", mode)
	}
	switch {
	case snap != "":
		return crackdb.OpenSnapshotFile(snap, algo, opts...)
	case file != "":
		vals, err := crackdb.LoadColumn(file)
		if err != nil {
			return nil, err
		}
		return crackdb.Open(vals, algo, opts...)
	default:
		return crackdb.Open(crackdb.MakeData(n, seed), algo, opts...)
	}
}

// parsePredicate turns "q lo hi", "between lo hi" or "or lo hi lo hi ..."
// into a Predicate.
func parsePredicate(fields []string) (crackdb.Predicate, error) {
	var zero crackdb.Predicate
	nums := make([]int64, 0, len(fields)-1)
	for _, f := range fields[1:] {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return zero, err
		}
		nums = append(nums, v)
	}
	if len(nums) < 2 || len(nums)%2 != 0 {
		return zero, fmt.Errorf("usage: %s <lo> <hi> [<lo> <hi>...]", fields[0])
	}
	if fields[0] != "or" && len(nums) != 2 {
		return zero, fmt.Errorf("usage: %s <lo> <hi>", fields[0])
	}
	mk := crackdb.Range
	if fields[0] == "between" {
		mk = crackdb.Between
	}
	p := mk(nums[0], nums[1])
	for i := 2; i < len(nums); i += 2 {
		p = p.Or(mk(nums[i], nums[i+1]))
	}
	return p, nil
}
