// Command benchgate fails when a kernel benchmark regresses against the
// committed baseline. CI runs it in the bench job:
//
//	go test -bench=. -benchmem -count=6 -run '^$' ./internal/... > current.txt
//	benchgate -baseline bench/baseline/kernels.txt -current current.txt
//
// Both files are plain `go test -bench` output; each benchmark's samples
// reduce to their median (6 interleaved counts make one noisy sample
// survivable), and the gate fails when a gated benchmark's median ns/op
// exceeds the baseline's by more than -threshold-pct. A gated baseline
// benchmark missing from the current run also fails: renaming a kernel
// benchmark must not silently drop it from the gate. Refresh the baseline
// by regenerating it on the reference machine (see README "Performance").
//
// With -check-json, benchgate instead validates committed BENCH_*.json
// reports against the crackdb-bench/v1 schema (decode + invariant check,
// see bench.ValidateReport) and exits non-zero on the first malformed
// file:
//
//	benchgate -check-json BENCH_PR6.json,BENCH_PR8.json
//	benchgate -check-json "$(ls BENCH_*.json | paste -sd,)"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "bench/baseline/kernels.txt", "committed baseline `go test -bench` output")
		currentPath  = flag.String("current", "", "current `go test -bench` output to gate")
		thresholdPct = flag.Float64("threshold-pct", 15, "fail when median ns/op regresses more than this percentage")
		match        = flag.String("match", "BenchmarkCrackInTwo,BenchmarkCrackInThree,BenchmarkMDD1RMaterialize,BenchmarkConvergedProbe,BenchmarkParallelCrackInTwo",
			"comma-separated benchmark name prefixes to gate (empty: every baseline benchmark)")
		checkJSON = flag.String("check-json", "", "comma-separated BENCH_*.json files to validate against the crackdb-bench/v1 schema, then exit")
	)
	flag.Parse()
	if *checkJSON != "" {
		ok := true
		for _, path := range strings.Split(*checkJSON, ",") {
			if path = strings.TrimSpace(path); path != "" && !checkReport(path) {
				ok = false
			}
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	baseline := parseFile(*baselinePath)
	current := parseFile(*currentPath)
	var prefixes []string
	for _, p := range strings.Split(*match, ",") {
		if p = strings.TrimSpace(p); p != "" {
			prefixes = append(prefixes, p)
		}
	}
	findings, err := bench.Gate(baseline, current, prefixes, 1+*thresholdPct/100)
	for _, f := range findings {
		verdict := "ok"
		if f.Regress {
			verdict = "REGRESSION"
		}
		fmt.Printf("%-50s %14.0f %14.0f ns/op %+7.1f%% %s\n",
			f.Name, f.BaseNs, f.CurNs, (f.Ratio-1)*100, verdict)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of baseline\n", len(findings), *thresholdPct)
}

// checkReport validates one committed BENCH_*.json against the
// crackdb-bench/v1 schema, reporting the verdict.
func checkReport(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return false
	}
	defer f.Close()
	rep, err := bench.ReadReport(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		return false
	}
	fmt.Printf("%-20s ok: %d rows (%s, go %s %s/%s)\n",
		path, len(rep.Rows), rep.Schema, rep.Go, rep.GOOS, rep.GOARCH)
	return true
}

func parseFile(path string) map[string]*bench.BenchSamples {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	defer f.Close()
	samples, err := bench.ParseBench(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	if len(samples) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark lines in %s\n", path)
		os.Exit(1)
	}
	return samples
}
