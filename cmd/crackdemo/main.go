// Command crackdemo is a live view of database cracking: it runs a query
// sequence over a small column and prints how the cracker column's piece
// structure evolves — Fig. 1 of the paper, animated in text. Crack
// positions are drawn as '|' between tuples.
//
// Usage:
//
//	crackdemo                                  # defaults: crack, random, 10 queries
//	crackdemo -algo dd1r -workload sequential -n 64 -q 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/colload"
	"repro/internal/core"
	"repro/internal/dberr"
	"repro/internal/workload"
)

func main() {
	var (
		algo     = flag.String("algo", "crack", "algorithm (core specs, e.g. crack, dd1r, mdd1r, pmdd1r-10)")
		wl       = flag.String("workload", "random", "workload pattern")
		n        = flag.Int64("n", 48, "column size (keep small: the demo prints every tuple)")
		q        = flag.Int("q", 10, "number of queries")
		seed     = flag.Uint64("seed", 7, "random seed")
		showVals = flag.Bool("values", true, "print column contents each step")
		file     = flag.String("file", "", "load the column from a file (text or CRKC binary) instead of generating it")
	)
	flag.Parse()

	var data []int64
	if *file != "" {
		var err error
		data, err = colload.LoadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crackdemo:", err)
			os.Exit(2)
		}
		*n = int64(len(data))
	} else {
		data = bench.MakeData(*n, *seed)
	}
	ix, err := core.Build(data, *algo, core.Options{Seed: *seed, CrackSize: 4, ProgressiveSize: 8})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crackdemo:", err)
		if errors.Is(err, dberr.ErrUnknownAlgorithm) {
			fmt.Fprintln(os.Stderr, "crackdemo: known algorithms:", strings.Join(core.Algorithms(), " "))
		}
		os.Exit(2)
	}
	eng, ok := ix.(interface{ Engine() *core.Engine })
	if !ok {
		fmt.Fprintf(os.Stderr, "crackdemo: %s does not expose its physical layout\n", *algo)
		os.Exit(2)
	}
	gen, err := workload.New(*wl, workload.Params{N: *n, Q: *q, S: maxI64(*n/10, 2), Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crackdemo:", err)
		os.Exit(2)
	}

	fmt.Printf("cracking a column of %d tuples with %s under the %q workload\n\n", *n, ix.Name(), gen.Name())
	if *showVals {
		fmt.Println("start:")
		printColumn(eng.Engine())
		fmt.Println()
	}
	for i := 0; i < *q; i++ {
		lo, hi := gen.Next()
		res := ix.Query(lo, hi)
		st := ix.Stats()
		fmt.Printf("Q%-3d select [%3d,%3d) -> %3d tuples   pieces=%-3d touched(total)=%d\n",
			i+1, lo, hi, res.Count(), st.Pieces, st.Touched)
		if *showVals {
			printColumn(eng.Engine())
		}
	}
	fmt.Printf("\nfinal state: %d pieces after %d queries\n", ix.Stats().Pieces, *q)
}

// printColumn renders the column with '|' at crack positions.
func printColumn(e *core.Engine) {
	col := e.Column()
	boundaries := make(map[int]bool)
	e.CrackerIndex().Ascend(func(_ int64, pos int) bool {
		boundaries[pos] = true
		return true
	})
	var b strings.Builder
	for i, v := range col.Values {
		if boundaries[i] {
			b.WriteString("| ")
		}
		fmt.Fprintf(&b, "%d ", v)
	}
	fmt.Printf("     [ %s]\n", b.String())
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
