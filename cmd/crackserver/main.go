// Command crackserver serves an adaptive cracking index over HTTP/JSON:
// the paper's "index refinement as a side effect of query processing",
// observable under real concurrent client traffic.
//
// The server builds the paper's dataset — a seeded random permutation of
// [0, n) — opens a crackdb.DB over it in the chosen concurrency mode, and
// serves range queries, lazy updates and live cracking telemetry (see
// internal/server for the endpoint reference):
//
//	crackserver -n 10000000 -algorithm dd1r -mode shared
//	crackserver -mode sharded-8 -inflight 256
//	crackserver -addr 127.0.0.1:0 -addr-file /tmp/addr   # CI: random port
//
// Because the data is a permutation, every answer is checkable against a
// closed-form oracle; `crackbench -serve` exploits that to validate a
// whole load-test run end to end over the wire.
//
// # Cluster mode
//
// With -shard-of, the server holds one contiguous value slice of a larger
// permutation and reports the owned range on /healthz; a coordinator
// (-coordinator -backends=...) value-routes queries and updates across
// such backends, scatter-gathers the answers, and migrates shard ranges
// live between nodes (see internal/cluster):
//
//	crackserver -addr :9001 -shard-of 1000000 -shard-lo 0      -shard-hi 500000
//	crackserver -addr :9002 -shard-of 1000000 -shard-lo 500000 -shard-hi 1000000
//	crackserver -addr :8080 -coordinator -backends=http://127.0.0.1:9001,http://127.0.0.1:9002
//
// Backends announcing the same [lo, hi) range form a replica set: the
// coordinator fans every update out to all of them, hedges reads across
// them, and keeps serving (and re-seeding the laggard) when one dies.
// -replicas makes the minimum per-range replica count a boot-time check;
// POST /v1/drain moves all of a node's ranges elsewhere for maintenance
// (see internal/cluster).
//
// # Multi-tenant catalog mode
//
// With -tables, one listener hosts several independent tables: each
// name:rows spec builds (or warm-starts) its own DB and server, and the
// /v1/tables/{name}/... surface dispatches to it — per-table admission
// (-table-inflight), per-table snapshots, per-table stats. -snapshot-store
// names a directory-backed snapshot store the whole catalog saves into
// and warm-starts from (keys tables/<name>.crks; a single-table server
// uses key db.crks), so a restarted or replacement process resumes every
// table's earned adaptation from shared storage:
//
//	crackserver -tables users:100000,orders:50000 -snapshot-store /var/lib/crackdb
//
// -tls-cert/-tls-key serve HTTPS; -auth-token requires a bearer token on
// every request but GET /healthz (all modes).
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// waits up to -drain for in-flight requests, then cancels their contexts
// (the DB's query paths honor cancellation) and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	crackdb "repro"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/cluster/client"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:0 picks a random port)")
		addrFile = flag.String("addr-file", "", "write the resolved listen address to this file once serving (CI port discovery)")
		n        = flag.Int64("n", 1_000_000, "column size: the data is a seeded permutation of [0, n)")
		algo     = flag.String("algorithm", crackdb.DD1R, "cracking algorithm spec (see crackdb.Algorithms)")
		mode     = flag.String("mode", "shared", "concurrency mode: single, shared, or sharded-<k>")
		seed     = flag.Uint64("seed", 42, "seed for the data permutation and the stochastic algorithms")
		inflight = flag.Int("inflight", 0, "max in-flight data-plane requests before 429 (0: 8x worker pool; <0: unlimited)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM before in-flight requests are canceled")
		snapPath = flag.String("snapshot", "", "snapshot file: warm-start from it when it exists (resuming all adaptation earned before the restart), and the save target for POST /v1/snapshot and -snapshot-interval")
		snapIntv = flag.Duration("snapshot-interval", 0, "periodically save a snapshot to -snapshot or -snapshot-store (0 disables)")
		parCrack = flag.Bool("parallel-crack", false, "crack large pieces with the chunked parallel kernel (values-only columns)")
		coarse   = flag.Int("coarse-init", 0, "coarse-granular initialization: pre-cut a cold build into this many pieces (0 disables; ignored on warm start)")

		groupCommit = flag.Int("group-commit", 0, "group-commit write batching: max ops per flush through one exclusive section (0 disables; shared/sharded modes only)")
		groupWait   = flag.Duration("group-wait", 200*time.Microsecond, "group-commit: max time the collector waits to fill a batch before flushing")
		admWait     = flag.Duration("admission-wait", 0, "bounded admission queue: how long a request at the -inflight limit may wait for a slot before 429 (0: fail fast)")

		tlsCert   = flag.String("tls-cert", "", "TLS certificate file; with -tls-key, serve HTTPS")
		tlsKey    = flag.String("tls-key", "", "TLS private key file")
		authToken = flag.String("auth-token", "", "require 'Authorization: Bearer <token>' on every request but GET /healthz")

		shardOf = flag.Int64("shard-of", 0, "cluster mode: this node holds the [-shard-lo, -shard-hi) value slice of a permutation of [0, shard-of) (overrides -n)")
		shardLo = flag.Int64("shard-lo", 0, "owned value range start (with -shard-of)")
		shardHi = flag.Int64("shard-hi", 0, "owned value range end, exclusive (with -shard-of)")

		tables        = flag.String("tables", "", "multi-tenant catalog mode: comma-separated name:rows specs, each served as its own DB under /v1/tables/<name>/ (overrides -n)")
		snapStore     = flag.String("snapshot-store", "", "snapshot store directory: warm-start from it and save snapshots into it (key db.crks, or tables/<name>.crks with -tables); wins over -snapshot for saves")
		tableInflight = flag.Int("table-inflight", 0, "catalog mode: per-table max in-flight requests before 429 (0: 8x worker pool; <0: unlimited)")

		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator over -backends instead of serving data")
		backends    = flag.String("backends", "", "comma-separated backend base URLs for -coordinator")
		backendTok  = flag.String("backend-token", "", "bearer token the coordinator presents to its backends (default: -auth-token)")
		replicas    = flag.Int("replicas", 0, "coordinator: refuse to boot unless every range has at least this many replicas (0: no minimum)")
	)
	flag.Parse()

	if (*tlsCert == "") != (*tlsKey == "") {
		log.Fatalf("crackserver: -tls-cert and -tls-key go together")
	}

	if *coordinator {
		runCoordinator(*addr, *addrFile, *backends, *authToken, *backendTok, *tlsCert, *tlsKey, *drain, *replicas)
		return
	}

	conc, err := parseMode(*mode)
	if err != nil {
		log.Fatalf("crackserver: %v", err)
	}
	if *snapIntv > 0 && *snapPath == "" && *snapStore == "" {
		log.Fatalf("crackserver: -snapshot-interval needs -snapshot or -snapshot-store")
	}
	if *shardOf > 0 && !(0 <= *shardLo && *shardLo <= *shardHi && *shardHi <= *shardOf) {
		log.Fatalf("crackserver: need 0 <= -shard-lo <= -shard-hi <= -shard-of")
	}

	// mkOpts builds the DB construction options for one dataset seed —
	// shared between the single-table boot, every catalog table (each
	// with its own derived seed), and Config.Reopen, so a live
	// restore/retain swap keeps tuning (group commit, parallel crack)
	// across the replacement DB.
	mkOpts := func(seed uint64) []crackdb.Option {
		opts := []crackdb.Option{crackdb.WithSeed(seed), crackdb.WithConcurrency(conc)}
		if *parCrack {
			opts = append(opts, crackdb.WithParallelCrack())
		}
		if *coarse > 0 {
			// A warm start ignores this by contract: the snapshot's cracks are
			// recorded against the snapshot's layout, so Restore never pre-cuts.
			opts = append(opts, crackdb.WithCoarseInit(*coarse))
		}
		if *groupCommit > 0 {
			opts = append(opts, crackdb.WithGroupCommit(*groupCommit, *groupWait))
		}
		return opts
	}

	var store crackdb.SnapshotStore
	if *snapStore != "" {
		fileStore, err := crackdb.NewFileSnapshotStore(*snapStore)
		if err != nil {
			log.Fatalf("crackserver: -snapshot-store: %v", err)
		}
		store = fileStore
	}

	if *tables != "" {
		if *shardOf > 0 {
			log.Fatalf("crackserver: -tables cannot combine with -shard-of")
		}
		runTables(tablesConfig{
			specs: *tables, algo: *algo, seed: *seed, mkOpts: mkOpts,
			store: store, inflight: *tableInflight, admWait: *admWait,
			snapIntv: *snapIntv, authToken: *authToken,
			addr: *addr, addrFile: *addrFile, tlsCert: *tlsCert, tlsKey: *tlsKey,
			drain: *drain,
		})
		return
	}

	opts := mkOpts(*seed)

	// Warm start when the snapshot store holds the db.crks key (or the
	// snapshot file exists); cold permutation build otherwise. A warm
	// start restores into whatever -mode says — the snapshot re-cuts
	// itself along new shard bounds if the count changed.
	const storeKey = "db.crks"
	var db *crackdb.DB
	restored := false
	if store != nil {
		db, err = crackdb.OpenSnapshotFrom(store, storeKey, *algo, opts...)
		switch {
		case err == nil:
			restored = true
			if *shardOf == 0 && int64(db.Rows()) != *n {
				log.Printf("snapshot holds %d rows; overriding -n %d", db.Rows(), *n)
				*n = int64(db.Rows())
			}
			log.Printf("warm start from store key %s: %d rows, %d pieces restored (%s)",
				storeKey, db.Rows(), db.Stats().Pieces, db.Mode())
		case errors.Is(err, fs.ErrNotExist):
			// Cold start; the first save will create the key.
			db = nil
		default:
			log.Fatalf("crackserver: warm start from store key %s: %v", storeKey, err)
		}
	} else if *snapPath != "" {
		// Only a confirmed not-exist falls through to a cold start: any
		// other stat failure is fatal, because proceeding cold would let
		// the next save overwrite a real snapshot with an unrefined index.
		_, statErr := os.Stat(*snapPath)
		if statErr != nil && !errors.Is(statErr, os.ErrNotExist) {
			log.Fatalf("crackserver: checking -snapshot %s: %v", *snapPath, statErr)
		}
		if statErr == nil {
			db, err = crackdb.OpenSnapshotFile(*snapPath, *algo, opts...)
			if err != nil {
				log.Fatalf("crackserver: warm start from %s: %v", *snapPath, err)
			}
			restored = true
			if *shardOf == 0 && int64(db.Rows()) != *n {
				log.Printf("snapshot holds %d rows; overriding -n %d", db.Rows(), *n)
				*n = int64(db.Rows())
			}
			log.Printf("warm start from %s: %d rows, %d pieces restored (%s)",
				*snapPath, db.Rows(), db.Stats().Pieces, db.Mode())
		}
	}
	if db == nil {
		var data []int64
		if *shardOf > 0 {
			log.Printf("building [%d, %d) slice of a %d-row permutation (seed %d)...",
				*shardLo, *shardHi, *shardOf, *seed)
			for _, v := range crackdb.MakeData(*shardOf, *seed) {
				if v >= *shardLo && v < *shardHi {
					data = append(data, v)
				}
			}
		} else {
			log.Printf("building %d-row permutation (seed %d)...", *n, *seed)
			data = crackdb.MakeData(*n, *seed)
		}
		db, err = crackdb.Open(data, *algo, opts...)
		if err != nil {
			log.Fatalf("crackserver: %v", err)
		}
	}
	defer db.Close()

	info := server.Info{
		Rows: *n, Algorithm: *algo, Seed: *seed, Permutation: true,
		ParallelCrack: *parCrack, CoarseInitPieces: *coarse,
	}
	if *shardOf > 0 {
		// A slice is not the full permutation; the coordinator re-derives
		// the cluster-wide flag from how the slices tile.
		info.Rows = int64(db.Rows())
		info.Permutation = false
	}
	srvCfg := server.Config{
		MaxInFlight:   *inflight,
		AdmissionWait: *admWait,
		SnapshotPath:  *snapPath,
		Info:          info,
		AuthToken:     *authToken,
		ShardLo:       *shardLo,
		ShardHi:       *shardHi,
		Restored:      restored,
		Reopen: func(snap crackdb.DBSnapshot) (*crackdb.DB, error) {
			return crackdb.OpenSnapshot(snap, *algo, opts...)
		},
	}
	if store != nil {
		srvCfg.SnapshotStore, srvCfg.SnapshotKey = store, storeKey
	}
	srv := server.New(db, srvCfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic background saver: every tick captures the adapted state via
	// the same drain path as POST /v1/snapshot. A tick that races pending
	// updates just logs and retries next interval — lazily merged updates
	// drain with query traffic.
	if *snapIntv > 0 {
		go func() {
			tick := time.NewTicker(*snapIntv)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if info, err := srv.SaveSnapshot(); err != nil {
						log.Printf("periodic snapshot: %v", err)
					} else {
						log.Printf("periodic snapshot: %d pieces -> %s (%d bytes, %dms)",
							info.Pieces, info.Path, info.Bytes, info.ElapsedMS)
					}
				}
			}
		}()
	}

	banner := fmt.Sprintf("serving %s (%s)", db.Name(), db.Mode())
	if *shardOf > 0 {
		banner = fmt.Sprintf("serving shard [%d, %d) of %d: %s (%s)",
			*shardLo, *shardHi, *shardOf, db.Name(), db.Mode())
	}
	serve(ctx, *addr, *addrFile, *tlsCert, *tlsKey, *drain, srv.Handler(), banner)
}

// tablesConfig carries everything the catalog boot needs out of main's
// parsed flags.
type tablesConfig struct {
	specs     string
	algo      string
	seed      uint64
	mkOpts    func(seed uint64) []crackdb.Option
	store     crackdb.SnapshotStore
	inflight  int
	admWait   time.Duration
	snapIntv  time.Duration
	authToken string

	addr, addrFile, tlsCert, tlsKey string
	drain                           time.Duration
}

// tableSpec is one parsed -tables entry.
type tableSpec struct {
	name string
	rows int64
}

// runTables boots multi-tenant catalog mode: one DB and one
// server.Server per -tables entry, all behind internal/catalog's
// /v1/tables surface. Each table's data is its own seeded permutation of
// [0, rows) — the seed derived from the table name, so every table stays
// oracle-checkable and adding a table never reshuffles its neighbors.
func runTables(cfg tablesConfig) {
	specs, err := parseTables(cfg.specs)
	if err != nil {
		log.Fatalf("crackserver: %v", err)
	}
	if cfg.snapIntv > 0 && cfg.store == nil {
		log.Fatalf("crackserver: -snapshot-interval with -tables needs -snapshot-store")
	}

	cat := catalog.New(catalog.Config{AuthToken: cfg.authToken})
	type tableSrv struct {
		name string
		srv  *server.Server
	}
	var servers []tableSrv
	for _, spec := range specs {
		key := "tables/" + spec.name + ".crks"
		tseed := cfg.seed ^ nameSeed(spec.name)
		opts := cfg.mkOpts(tseed)

		var db *crackdb.DB
		restored := false
		if cfg.store != nil {
			db, err = crackdb.OpenSnapshotFrom(cfg.store, key, cfg.algo, opts...)
			switch {
			case err == nil:
				restored = true
				if int64(db.Rows()) != spec.rows {
					log.Printf("table %s: snapshot holds %d rows; overriding spec's %d",
						spec.name, db.Rows(), spec.rows)
					spec.rows = int64(db.Rows())
				}
				log.Printf("table %s: warm start from store key %s: %d rows, %d pieces restored (%s)",
					spec.name, key, db.Rows(), db.Stats().Pieces, db.Mode())
			case errors.Is(err, fs.ErrNotExist):
				// Cold start; the first save will create the key.
				db = nil
			default:
				log.Fatalf("crackserver: table %s: warm start from store key %s: %v", spec.name, key, err)
			}
		}
		if db == nil {
			log.Printf("table %s: building %d-row permutation (seed %d)...", spec.name, spec.rows, tseed)
			db, err = crackdb.Open(crackdb.MakeData(spec.rows, tseed), cfg.algo, opts...)
			if err != nil {
				log.Fatalf("crackserver: table %s: %v", spec.name, err)
			}
		}
		defer db.Close()

		srvCfg := server.Config{
			MaxInFlight:   cfg.inflight,
			AdmissionWait: cfg.admWait,
			Info: server.Info{
				Rows: spec.rows, Algorithm: cfg.algo, Seed: tseed, Permutation: true,
			},
			Restored: restored,
			Reopen: func(snap crackdb.DBSnapshot) (*crackdb.DB, error) {
				return crackdb.OpenSnapshot(snap, cfg.algo, opts...)
			},
		}
		if cfg.store != nil {
			srvCfg.SnapshotStore, srvCfg.SnapshotKey = cfg.store, key
		}
		srv := server.New(db, srvCfg)
		if err := cat.Add(spec.name, srv); err != nil {
			log.Fatalf("crackserver: %v", err)
		}
		servers = append(servers, tableSrv{spec.name, srv})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic background saver, per table: same capture path as POST
	// /v1/tables/{name}/snapshot. A tick that fails for one table logs
	// and keeps going — the other tables' saves are independent.
	if cfg.snapIntv > 0 {
		go func() {
			tick := time.NewTicker(cfg.snapIntv)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					for _, ts := range servers {
						if info, err := ts.srv.SaveSnapshot(); err != nil {
							log.Printf("periodic snapshot: table %s: %v", ts.name, err)
						} else {
							log.Printf("periodic snapshot: table %s: %d pieces -> %s (%dms)",
								ts.name, info.Pieces, info.Path, info.ElapsedMS)
						}
					}
				}
			}
		}()
	}

	names := make([]string, len(servers))
	for i, ts := range servers {
		names[i] = ts.name
	}
	banner := fmt.Sprintf("serving catalog of %d tables (%s)", len(servers), strings.Join(names, ", "))
	serve(ctx, cfg.addr, cfg.addrFile, cfg.tlsCert, cfg.tlsKey, cfg.drain, cat.Handler(), banner)
}

// parseTables parses the -tables spec list ("users:100000,orders:50000").
func parseTables(list string) ([]tableSpec, error) {
	var specs []tableSpec
	seen := make(map[string]bool)
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, rowsStr, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("bad -tables entry %q (want name:rows)", item)
		}
		if err := catalog.ValidName(name); err != nil {
			return nil, err
		}
		rows, err := strconv.ParseInt(rowsStr, 10, 64)
		if err != nil || rows < 1 {
			return nil, fmt.Errorf("bad row count in -tables entry %q", item)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate table %q in -tables", name)
		}
		seen[name] = true
		specs = append(specs, tableSpec{name: name, rows: rows})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-tables needs at least one name:rows entry")
	}
	return specs, nil
}

// nameSeed folds a table name into a seed offset (FNV-1a), so each
// table's permutation is distinct but stable across restarts and
// independent of the -tables spec order.
func nameSeed(name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return h.Sum64()
}

// runCoordinator boots the scatter-gather coordinator over the given
// backend URLs and serves the same v1 API surface.
func runCoordinator(addr, addrFile, backendList, authToken, backendTok, tlsCert, tlsKey string, drain time.Duration, replicas int) {
	var urls []string
	for _, u := range strings.Split(backendList, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatalf("crackserver: -coordinator needs -backends=url1,url2,...")
	}
	if backendTok == "" {
		backendTok = authToken
	}
	bootCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	coord, err := cluster.New(bootCtx, urls, cluster.Config{
		Client:    client.Config{Token: backendTok},
		AuthToken: authToken,
		Replicas:  replicas,
	})
	if err != nil {
		log.Fatalf("crackserver: %v", err)
	}
	defer coord.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	banner := fmt.Sprintf("coordinating %d rows across %d backends", coord.Rows(), len(urls))
	serve(ctx, addr, addrFile, tlsCert, tlsKey, drain, coord.Handler(), banner)
}

// serve runs handler on addr (TLS when cert/key are set) until ctx is
// done, then drains gracefully within the drain budget.
func serve(ctx context.Context, addr, addrFile, tlsCert, tlsKey string, drain time.Duration, handler http.Handler, banner string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("crackserver: %v", err)
	}
	resolved := ln.Addr().String()
	if addrFile != "" {
		// Write-then-rename so a polling reader never sees a partial file.
		tmp := addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(resolved), 0o644); err != nil {
			log.Fatalf("crackserver: %v", err)
		}
		if err := os.Rename(tmp, addrFile); err != nil {
			log.Fatalf("crackserver: %v", err)
		}
	}

	// baseCtx cancels every in-flight request's context when the drain
	// budget runs out; until then Shutdown lets them finish.
	baseCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	serveErr := make(chan error, 1)
	scheme := "http"
	if tlsCert != "" {
		scheme = "https"
		go func() { serveErr <- hs.ServeTLS(ln, tlsCert, tlsKey) }()
	} else {
		go func() { serveErr <- hs.Serve(ln) }()
	}
	log.Printf("%s on %s://%s", banner, scheme, displayAddr(resolved))

	select {
	case err := <-serveErr:
		log.Fatalf("crackserver: %v", err)
	case <-ctx.Done():
	}

	log.Printf("draining (up to %v)...", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain budget exceeded; canceling in-flight requests: %v", err)
		cancelRequests()
		if err := hs.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("bye")
}

// parseMode maps "single", "shared", "sharded-<k>" to a crackdb
// concurrency mode.
func parseMode(mode string) (crackdb.Concurrency, error) {
	m := strings.ToLower(strings.TrimSpace(mode))
	switch {
	case m == "single":
		return crackdb.Single, nil
	case m == "shared":
		return crackdb.Shared, nil
	case strings.HasPrefix(m, "sharded-"):
		k, err := strconv.Atoi(strings.TrimPrefix(m, "sharded-"))
		if err != nil || k < 1 {
			return crackdb.Concurrency{}, fmt.Errorf("bad shard count in mode %q", mode)
		}
		return crackdb.Sharded(k), nil
	}
	return crackdb.Concurrency{}, fmt.Errorf("unknown mode %q (single, shared, sharded-<k>)", mode)
}

// displayAddr rewrites a wildcard listen address to a dialable one for
// the startup log line.
func displayAddr(addr string) string {
	if host, port, err := net.SplitHostPort(addr); err == nil {
		if host == "" || host == "::" || host == "0.0.0.0" {
			return net.JoinHostPort("127.0.0.1", port)
		}
	}
	return addr
}
