// Command crackserver serves an adaptive cracking index over HTTP/JSON:
// the paper's "index refinement as a side effect of query processing",
// observable under real concurrent client traffic.
//
// The server builds the paper's dataset — a seeded random permutation of
// [0, n) — opens a crackdb.DB over it in the chosen concurrency mode, and
// serves range queries, lazy updates and live cracking telemetry (see
// internal/server for the endpoint reference):
//
//	crackserver -n 10000000 -algorithm dd1r -mode shared
//	crackserver -mode sharded-8 -inflight 256
//	crackserver -addr 127.0.0.1:0 -addr-file /tmp/addr   # CI: random port
//
// Because the data is a permutation, every answer is checkable against a
// closed-form oracle; `crackbench -serve` exploits that to validate a
// whole load-test run end to end over the wire.
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// waits up to -drain for in-flight requests, then cancels their contexts
// (the DB's query paths honor cancellation) and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	crackdb "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:0 picks a random port)")
		addrFile = flag.String("addr-file", "", "write the resolved listen address to this file once serving (CI port discovery)")
		n        = flag.Int64("n", 1_000_000, "column size: the data is a seeded permutation of [0, n)")
		algo     = flag.String("algorithm", crackdb.DD1R, "cracking algorithm spec (see crackdb.Algorithms)")
		mode     = flag.String("mode", "shared", "concurrency mode: single, shared, or sharded-<k>")
		seed     = flag.Uint64("seed", 42, "seed for the data permutation and the stochastic algorithms")
		inflight = flag.Int("inflight", 0, "max in-flight data-plane requests before 429 (0: 8x worker pool; <0: unlimited)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM before in-flight requests are canceled")
		snapPath = flag.String("snapshot", "", "snapshot file: warm-start from it when it exists (resuming all adaptation earned before the restart), and the save target for POST /v1/snapshot and -snapshot-interval")
		snapIntv = flag.Duration("snapshot-interval", 0, "periodically save a snapshot to -snapshot (0 disables)")
		parCrack = flag.Bool("parallel-crack", false, "crack large pieces with the chunked parallel kernel (values-only columns)")
		coarse   = flag.Int("coarse-init", 0, "coarse-granular initialization: pre-cut a cold build into this many pieces (0 disables; ignored on warm start)")
	)
	flag.Parse()

	conc, err := parseMode(*mode)
	if err != nil {
		log.Fatalf("crackserver: %v", err)
	}
	if *snapIntv > 0 && *snapPath == "" {
		log.Fatalf("crackserver: -snapshot-interval needs -snapshot")
	}

	opts := []crackdb.Option{crackdb.WithSeed(*seed), crackdb.WithConcurrency(conc)}
	if *parCrack {
		opts = append(opts, crackdb.WithParallelCrack())
	}
	if *coarse > 0 {
		// A warm start ignores this by contract: the snapshot's cracks are
		// recorded against the snapshot's layout, so Restore never pre-cuts.
		opts = append(opts, crackdb.WithCoarseInit(*coarse))
	}

	// Warm start when the snapshot file exists; cold permutation build
	// otherwise. A warm start restores into whatever -mode says — the
	// snapshot re-cuts itself along new shard bounds if the count changed.
	var db *crackdb.DB
	if *snapPath != "" {
		// Only a confirmed not-exist falls through to a cold start: any
		// other stat failure is fatal, because proceeding cold would let
		// the next save overwrite a real snapshot with an unrefined index.
		_, statErr := os.Stat(*snapPath)
		if statErr != nil && !errors.Is(statErr, os.ErrNotExist) {
			log.Fatalf("crackserver: checking -snapshot %s: %v", *snapPath, statErr)
		}
		if statErr == nil {
			db, err = crackdb.OpenSnapshotFile(*snapPath, *algo, opts...)
			if err != nil {
				log.Fatalf("crackserver: warm start from %s: %v", *snapPath, err)
			}
			if int64(db.Rows()) != *n {
				log.Printf("snapshot holds %d rows; overriding -n %d", db.Rows(), *n)
				*n = int64(db.Rows())
			}
			log.Printf("warm start from %s: %d rows, %d pieces restored (%s)",
				*snapPath, db.Rows(), db.Stats().Pieces, db.Mode())
		}
	}
	if db == nil {
		log.Printf("building %d-row permutation (seed %d)...", *n, *seed)
		data := crackdb.MakeData(*n, *seed)
		db, err = crackdb.Open(data, *algo, opts...)
		if err != nil {
			log.Fatalf("crackserver: %v", err)
		}
	}
	defer db.Close()

	srv := server.New(db, server.Config{
		MaxInFlight:  *inflight,
		SnapshotPath: *snapPath,
		Info: server.Info{
			Rows: *n, Algorithm: *algo, Seed: *seed, Permutation: true,
			ParallelCrack: *parCrack, CoarseInitPieces: *coarse,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("crackserver: %v", err)
	}
	resolved := ln.Addr().String()
	if *addrFile != "" {
		// Write-then-rename so a polling reader never sees a partial file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(resolved), 0o644); err != nil {
			log.Fatalf("crackserver: %v", err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Fatalf("crackserver: %v", err)
		}
	}

	// baseCtx cancels every in-flight request's context when the drain
	// budget runs out; until then Shutdown lets them finish.
	baseCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic background saver: every tick captures the adapted state via
	// the same drain path as POST /v1/snapshot. A tick that races pending
	// updates just logs and retries next interval — lazily merged updates
	// drain with query traffic.
	if *snapIntv > 0 {
		go func() {
			tick := time.NewTicker(*snapIntv)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if info, err := srv.SaveSnapshot(); err != nil {
						log.Printf("periodic snapshot: %v", err)
					} else {
						log.Printf("periodic snapshot: %d pieces -> %s (%d bytes, %dms)",
							info.Pieces, info.Path, info.Bytes, info.ElapsedMS)
					}
				}
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("serving %s (%s) on http://%s", db.Name(), db.Mode(), displayAddr(resolved))

	select {
	case err := <-serveErr:
		log.Fatalf("crackserver: %v", err)
	case <-ctx.Done():
	}

	log.Printf("draining (up to %v)...", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain budget exceeded; canceling in-flight requests: %v", err)
		cancelRequests()
		if err := hs.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("bye")
}

// parseMode maps "single", "shared", "sharded-<k>" to a crackdb
// concurrency mode.
func parseMode(mode string) (crackdb.Concurrency, error) {
	m := strings.ToLower(strings.TrimSpace(mode))
	switch {
	case m == "single":
		return crackdb.Single, nil
	case m == "shared":
		return crackdb.Shared, nil
	case strings.HasPrefix(m, "sharded-"):
		k, err := strconv.Atoi(strings.TrimPrefix(m, "sharded-"))
		if err != nil || k < 1 {
			return crackdb.Concurrency{}, fmt.Errorf("bad shard count in mode %q", mode)
		}
		return crackdb.Sharded(k), nil
	}
	return crackdb.Concurrency{}, fmt.Errorf("unknown mode %q (single, shared, sharded-<k>)", mode)
}

// displayAddr rewrites a wildcard listen address to a dialable one for
// the startup log line.
func displayAddr(addr string) string {
	if host, port, err := net.SplitHostPort(addr); err == nil {
		if host == "" || host == "::" || host == "0.0.0.0" {
			return net.JoinHostPort("127.0.0.1", port)
		}
	}
	return addr
}
