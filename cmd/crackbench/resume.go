package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	crackdb "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

// resumeExperiment measures what a snapshot-backed warm start is worth:
// it runs the first half of a workload, snapshots, then compares the cost
// of the second half across three futures —
//
//   - uninterrupted: the index keeps running (the no-restart baseline);
//   - cold restart: the process restarts without a snapshot and re-pays
//     the convergence the first half had earned;
//   - warm restart: the process restores the snapshot into each
//     concurrency mode (including a different shard count) and resumes.
//
// Every answer is validated against the closed-form permutation oracle.
// The rows slot into the crackdb-bench/v1 JSON schema under experiment
// "resume" (crackbench -resume -json), workload naming the future.
func resumeExperiment(n int64, q int, s int64, seed uint64, algo string) ([]bench.JSONRow, error) {
	if q < 4 {
		q = 4
	}
	half := q / 2
	ctx := context.Background()

	gen := func() workload.Generator {
		return workload.Random(workload.Params{N: n, Q: q, S: s, Seed: seed})
	}
	row := func(name string, halfQ int, elapsed time.Duration, verr error) bench.JSONRow {
		r := bench.JSONRow{
			Experiment: "resume", Algorithm: algo, Workload: name,
			N: n, Q: int64(halfQ), Oracle: "ok",
			TotalNS: elapsed.Nanoseconds(), PerQueryNS: elapsed.Nanoseconds() / int64(halfQ),
		}
		if verr != nil {
			r.Oracle = verr.Error()
		}
		return r
	}
	// runHalf replays queries [from, to) of the workload on db, timing and
	// validating them.
	runHalf := func(db *crackdb.DB, from, to int) (time.Duration, error) {
		g := gen()
		for i := 0; i < from; i++ {
			g.Next()
		}
		var verr error
		start := time.Now()
		for i := from; i < to; i++ {
			lo, hi := g.Next()
			agg, err := db.QueryAggregate(ctx, crackdb.Range(lo, hi))
			if err != nil {
				return time.Since(start), err
			}
			if verr == nil {
				if wc, ws := oracleRange(lo, hi, n); int64(agg.Count) != wc || agg.Sum != ws {
					verr = fmt.Errorf("query %d [%d,%d): got (%d,%d), want (%d,%d)",
						i, lo, hi, agg.Count, agg.Sum, wc, ws)
				}
			}
		}
		return time.Since(start), verr
	}

	var rows []bench.JSONRow

	// Uninterrupted baseline: one index runs the whole workload.
	db, err := crackdb.Open(crackdb.MakeData(n, seed), algo, crackdb.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	if _, err := runHalf(db, 0, half); err != nil {
		return nil, err
	}
	elapsed, verr := runHalf(db, half, q)
	rows = append(rows, row("uninterrupted", q-half, elapsed, verr))

	// Cold restart: a fresh index pays the convergence again.
	cold, err := crackdb.Open(crackdb.MakeData(n, seed), algo, crackdb.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	elapsed, verr = runHalf(cold, half, q)
	rows = append(rows, row("cold-restart", q-half, elapsed, verr))

	// Warm source: first half, then snapshot to disk — the full file
	// round trip a real restart takes.
	src, err := crackdb.Open(crackdb.MakeData(n, seed), algo, crackdb.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	if _, err := runHalf(src, 0, half); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "crackbench-resume")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "resume.crks")
	if err := src.SaveSnapshot(snapPath); err != nil {
		return nil, err
	}

	for _, target := range []struct {
		name string
		mode crackdb.Concurrency
	}{
		{"warm-single", crackdb.Single},
		{"warm-shared", crackdb.Shared},
		{"warm-sharded-4", crackdb.Sharded(4)},
		{"warm-sharded-7", crackdb.Sharded(7)}, // re-cut along new bounds
	} {
		restored, err := crackdb.OpenSnapshotFile(snapPath, algo,
			crackdb.WithSeed(seed), crackdb.WithConcurrency(target.mode))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", target.name, err)
		}
		elapsed, verr := runHalf(restored, half, q)
		rows = append(rows, row(target.name, q-half, elapsed, verr))
	}
	return rows, nil
}

// oracleRange is the closed-form oracle for permutation data: count and
// sum of the integers of [0, n) falling in [lo, hi).
func oracleRange(lo, hi, n int64) (count, sum int64) {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return 0, 0
	}
	count = hi - lo
	sum = (hi - 1 + lo) * count / 2
	return count, sum
}

// printResume renders the resume rows as an aligned table with the
// headline ratio: how much of the cold-restart cost a warm start avoids.
func printResume(w io.Writer, rows []bench.JSONRow) {
	var cold, warm int64
	fmt.Fprintf(w, "%-18s %12s %14s %s\n", "second half", "per-query", "total", "oracle")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10dns %12dns %s\n", r.Workload, r.PerQueryNS, r.TotalNS, r.Oracle)
		switch r.Workload {
		case "cold-restart":
			cold = r.TotalNS
		case "warm-single":
			warm = r.TotalNS
		}
	}
	if cold > 0 && warm > 0 {
		fmt.Fprintf(w, "warm start keeps the index: second half costs %.1f%% of a cold restart\n",
			100*float64(warm)/float64(cold))
	}
}
