package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	crackdb "repro"
	"repro/internal/bench"
	"repro/internal/server"
)

// openloopExperiment measures the write path under open-loop (fixed-rate)
// load, group-commit batcher on vs off. For each variant it boots an
// in-process crackserver over a Shared dd1r DB and offers two storms:
//
//   - insert: 100% writes, measuring acked-insert throughput;
//   - mixed: 20% writes / 80% aggregate reads, measuring the end-to-end
//     p99 per class plus the write latency decomposed into its queue
//     (batch seal), flush (lock wait) and apply (lock held) stages.
//
// Unlike the closed-loop -serve runs, arrivals here do not wait for
// completions, so the latencies include the queueing delay a saturated
// server builds up — the regime group commit is for. The rows slot into
// the crackdb-bench/v1 JSON schema under experiment "openloop"
// (crackbench -openloop -json), Oracle "n/a" because a write storm
// invalidates the permutation oracle by construction.
func openloopExperiment(n int64, q int, s int64, seed uint64, rate float64, out io.Writer) ([]bench.JSONRow, error) {
	if rate <= 0 {
		rate = 2000
	}
	if q < 100 {
		q = 100
	}
	ctx := context.Background()
	var rows []bench.JSONRow

	row := func(workload string, perOpNS int64) bench.JSONRow {
		return bench.JSONRow{
			Experiment: "openloop", Algorithm: "dd1r", Workload: workload,
			N: n, Q: int64(q), Oracle: "n/a",
			PerQueryNS: perOpNS, TotalNS: perOpNS * int64(q),
		}
	}

	for _, variant := range []struct {
		label string
		opts  []crackdb.Option
	}{
		{"batcher=off", nil},
		{"batcher=on", []crackdb.Option{crackdb.WithGroupCommit(128, 200*time.Microsecond)}},
	} {
		opts := append([]crackdb.Option{
			crackdb.WithSeed(seed), crackdb.WithConcurrency(crackdb.Shared),
		}, variant.opts...)
		db, err := crackdb.Open(crackdb.MakeData(n, seed), "dd1r", opts...)
		if err != nil {
			return nil, err
		}
		srv := server.New(db, server.Config{
			Info:          server.Info{Rows: n, Algorithm: "dd1r", Seed: seed, Permutation: true},
			AdmissionWait: 50 * time.Millisecond,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			db.Close()
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		url := "http://" + ln.Addr().String()

		for _, phase := range []struct {
			name     string
			writePct int
		}{
			{"insert", 100},
			{"mixed", 20},
		} {
			fmt.Fprintf(out, "\n== openloop %s %s ==\n", phase.name, variant.label)
			res, err := server.RunOpenLoad(ctx, server.OpenLoadConfig{
				URL:      url,
				Rate:     rate,
				Duration: time.Duration(float64(q) / rate * float64(time.Second)),
				WritePct: phase.writePct,
				S:        s,
				Seed:     seed,
				Deadline: time.Second,
			}, out)
			if err != nil {
				hs.Close()
				db.Close()
				return nil, fmt.Errorf("openloop %s %s: %w", phase.name, variant.label, err)
			}
			prefix := phase.name + "-" + variant.label
			if served := res.Reads + res.Writes; served > 0 {
				rows = append(rows, row(prefix+":per-op", int64(res.Elapsed.Nanoseconds())/int64(served)))
			}
			if res.WriteLat.Count > 0 {
				rows = append(rows,
					row(prefix+":write-p99", res.WriteLat.P99.Nanoseconds()),
					row(prefix+":queue-p99", res.Queue.P99.Nanoseconds()),
					row(prefix+":flush-p99", res.Flush.P99.Nanoseconds()),
					row(prefix+":apply-p99", res.Apply.P99.Nanoseconds()))
			}
			if res.ReadLat.Count > 0 {
				rows = append(rows, row(prefix+":read-p99", res.ReadLat.P99.Nanoseconds()))
			}
		}
		hs.Close()
		db.Close()
	}
	return rows, nil
}
