// Command crackbench regenerates the tables and figures of "Stochastic
// Database Cracking" (VLDB 2012).
//
// Usage:
//
//	crackbench -experiment fig2            # one experiment
//	crackbench -experiment all             # the full evaluation
//	crackbench -experiment fig17 -n 2000000 -q 10000
//	crackbench -experiment concurrency -procs 8
//	crackbench -list                       # show experiment ids
//
// Output is plain text: gnuplot-friendly series for the figures and
// aligned tables for the paper's tables. Paper scale is -n 100000000; the
// default 10000000 preserves every reported shape at ~1/10 the runtime.
//
// With -serve, crackbench is instead a load generator against a running
// crackserver (cmd/crackserver): -clients concurrent clients replay the
// -serve-workloads patterns over the wire, every answer is validated
// against the closed-form oracle, and the run reports per-query latency
// quantiles plus the live convergence telemetry sampled from /v1/stats:
//
//	crackserver -n 10000000 &
//	crackbench -serve -serve-url http://127.0.0.1:8080 -clients 16 -q 2000
//	crackbench -serve -quick               # CI smoke
//
// With -resume, crackbench measures what snapshot-backed warm starts are
// worth: it runs half the workload, snapshots, and compares the second
// half's cost across an uninterrupted index, a cold restart, and warm
// restarts into every concurrency mode (including a re-sharded layout).
// Standalone it prints a table; with -json the rows join the report
// under experiment "resume":
//
//	crackbench -resume -quick
//	crackbench -resume -json BENCH.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/server"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id ("+bench.IDs()+")")
		n          = flag.Int64("n", 10_000_000, "column size / value domain (paper: 100000000)")
		q          = flag.Int("q", 10_000, "queries per cell (paper: 10000; 160000 for SkyServer)")
		s          = flag.Int64("s", 10, "selectivity in tuples")
		seed       = flag.Uint64("seed", 42, "random seed for data, workloads and algorithms")
		validate   = flag.Bool("validate", false, "validate every result against the closed-form oracle")
		quick      = flag.Bool("quick", false, "smoke mode: shrink -n/-q to finish in seconds and validate results (CI)")
		procs      = flag.Int("procs", 0, "set GOMAXPROCS for the run (0: leave as is; the concurrency experiment scales with it)")
		list       = flag.Bool("list", false, "list experiments and exit")
		report     = flag.String("report", "", "write a markdown paper-vs-measured report to this file and exit")
		jsonOut    = flag.String("json", "", "write a machine-readable benchmark report (schema crackdb-bench/v1) to this file and exit; \"-\" for stdout. Every row carries the oracle-validation verdict regardless of -validate")
		kernels    = flag.String("kernels", "", "comma-separated label=file pairs of `go test -bench` outputs merged into the -json report as kernel rows (e.g. kernel-before=old.txt,kernel-after=new.txt)")
		plot       = flag.Bool("plot", false, "render an ASCII log-log comparison chart for -workload/-algos and exit")
		plotWl     = flag.String("workload", "sequential", "workload for -plot")
		plotAlgos  = flag.String("algos", "crack,dd1r,pmdd1r-10,sort", "comma-separated algorithms for -plot")
		parCrack   = flag.Bool("parallelcrack", false, "measure the chunked parallel crack kernel vs serial (first touch and convergence) over a GOMAXPROCS ladder; combine with -procs to set the ladder top; rows join the -json report under experiment \"parallelcrack\"")
		resume     = flag.Bool("resume", false, "measure restored-vs-cold convergence: run half the workload, snapshot, restore into every mode (incl. re-sharded), finish the workload; rows join the -json report under experiment \"resume\"")
		clusterRun = flag.Bool("cluster", false, "cluster mode: spawn an in-process coordinator over -cluster-backends local shard servers, replay the workloads through it with oracle validation, then live-migrate a range to a fresh node and replay again; rows join the -json report under experiments \"cluster\" and \"cluster-migrate\"")
		clusterN   = flag.Int("cluster-backends", 3, "backend count for -cluster")
		tablesRun  = flag.Bool("tables", false, "multi-tenant smoke: boot an in-process two-table catalog server over a shared snapshot store, replay validated workloads per table, snapshot every table, warm-restart the catalog and replay again; rows join the -json report under experiment \"tables\"")
		killRep    = flag.Bool("kill-replica", false, "with -cluster: instead of the migration scenario, measure availability and p99 while a backend is killed mid-run, replicated (2 copies per range) vs unreplicated, then drain a full node; rows join the -json report under experiment \"cluster-kill\"")
		serve      = flag.Bool("serve", false, "load-generator mode: replay workloads against a running crackserver and exit")
		serveURL   = flag.String("serve-url", "http://127.0.0.1:8080", "crackserver base URL for -serve")
		clients    = flag.Int("clients", 8, "concurrent clients for -serve")
		serveWls   = flag.String("serve-workloads", "random,sequential,skew", "comma-separated workloads replayed round-robin across -serve clients")
		serveAgg   = flag.Bool("serve-aggregate", false, "-serve: request (count, sum) only, no value payloads")
		rate       = flag.Float64("rate", 0, "-serve: offer open-loop load at this many requests/second instead of the closed-loop replay (0: closed loop); also the arrival rate for -openloop")
		arrival    = flag.String("arrival", "poisson", "-serve -rate: arrival process, poisson or fixed")
		writePct   = flag.Int("write-pct", 0, "-serve -rate: percentage of arrivals that are insert writes (reads otherwise)")
		duration   = flag.Duration("duration", 10*time.Second, "-serve -rate: how long to offer open-loop load")
		openloop   = flag.Bool("openloop", false, "measure open-loop insert throughput and decomposed write p99, group-commit batcher on vs off, over an in-process crackserver; rows join the -json report under experiment \"openloop\"")
	)
	flag.Parse()

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	if *quick {
		// API-regression smoke: every experiment exercises the hot query
		// path; a tiny column with validation on catches wrong answers and
		// gross slowdowns before merge without paper-scale runtimes.
		// Explicitly passed -n/-q/-validate win over the quick defaults.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["n"] {
			*n = 200_000
		}
		if !set["q"] {
			*q = 500
		}
		if !set["validate"] {
			*validate = true
		}
	}
	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *serve {
		// Quick mode shrinks the per-client query count through the shared
		// -q default above; a few hundred queries per client still crosses
		// the convergence knee on a quick-sized server column.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if *quick && !set["clients"] {
			*clients = 4
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if *rate > 0 {
			// Open loop: arrivals at a fixed rate, never waiting for
			// completions — the regime that exposes queueing delay.
			_, err := server.RunOpenLoad(ctx, server.OpenLoadConfig{
				URL: *serveURL, Rate: *rate, Arrival: *arrival,
				Duration: *duration, WritePct: *writePct, S: *s, Seed: *seed,
			}, os.Stdout)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crackbench: serve:", err)
				os.Exit(1)
			}
			return
		}
		var names []string
		for _, w := range strings.Split(*serveWls, ",") {
			if w = strings.TrimSpace(w); w != "" {
				names = append(names, w)
			}
		}
		_, err := server.RunLoad(ctx, server.LoadConfig{
			URL: *serveURL, Clients: *clients, Workloads: names,
			Q: *q, S: *s, Seed: *seed, Aggregate: *serveAgg,
		}, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: serve:", err)
			os.Exit(1)
		}
		return
	}
	var resumeExtra []bench.JSONRow
	if *clusterRun {
		// Quick mode's shrunken -n/-q (above) keep this a CI-speed smoke;
		// the default sizes measure real scatter-gather throughput.
		nClients := *clients
		if *quick {
			set := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["clients"] {
				nClients = 4
			}
		}
		var rows []bench.JSONRow
		var err error
		if *killRep {
			rows, err = killReplicaExperiment(*n, *q, *seed, nClients, os.Stdout)
		} else {
			rows, err = clusterExperiment(*n, *q, *s, *seed, *clusterN, nClients, os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: cluster:", err)
			os.Exit(1)
		}
		if *jsonOut == "" {
			return
		}
		// -cluster -json writes just these rows (the full cell matrix is a
		// separate, much longer run).
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crackbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteJSONRows(bench.Config{N: *n, Q: *q, S: *s, Seed: *seed}, out, rows); err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "json report written to %s\n", *jsonOut)
		return
	}
	if *tablesRun {
		nClients := *clients
		if *quick {
			set := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["clients"] {
				nClients = 4
			}
		}
		rows, err := tablesExperiment(*n, *q, *s, *seed, nClients, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: tables:", err)
			os.Exit(1)
		}
		if *jsonOut == "" {
			return
		}
		// Like -cluster: -tables -json writes just these rows.
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crackbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteJSONRows(bench.Config{N: *n, Q: *q, S: *s, Seed: *seed}, out, rows); err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "json report written to %s\n", *jsonOut)
		return
	}
	if *parCrack {
		rows, err := bench.ParallelCrackRows(bench.Config{N: *n, Q: *q, S: *s, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: parallelcrack:", err)
			os.Exit(1)
		}
		if *jsonOut == "" {
			bench.PrintParallelCrack(os.Stdout, rows)
			for _, r := range rows {
				if r.Oracle != "ok" {
					fmt.Fprintln(os.Stderr, "crackbench: parallelcrack: oracle validation failed:", r.Oracle)
					os.Exit(1)
				}
			}
			return
		}
		resumeExtra = rows
	}
	if *openloop {
		rows, err := openloopExperiment(*n, *q, *s, *seed, *rate, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: openloop:", err)
			os.Exit(1)
		}
		if *jsonOut == "" {
			return
		}
		// -openloop -json writes just these rows, like -cluster: the full
		// cell matrix is a separate, much longer run.
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crackbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteJSONRows(bench.Config{N: *n, Q: *q, S: *s, Seed: *seed}, out, rows); err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "json report written to %s\n", *jsonOut)
		return
	}
	if *resume {
		rows, err := resumeExperiment(*n, *q, *s, *seed, "dd1r")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: resume:", err)
			os.Exit(1)
		}
		if *jsonOut == "" {
			printResume(os.Stdout, rows)
			for _, r := range rows {
				if r.Oracle != "ok" {
					fmt.Fprintln(os.Stderr, "crackbench: resume: oracle validation failed:", r.Oracle)
					os.Exit(1)
				}
			}
			return
		}
		resumeExtra = append(resumeExtra, rows...)
	}
	if *jsonOut != "" {
		extra := resumeExtra
		if *kernels != "" {
			for _, pair := range strings.Split(*kernels, ",") {
				label, file, ok := strings.Cut(pair, "=")
				if !ok {
					fmt.Fprintf(os.Stderr, "crackbench: -kernels wants label=file, got %q\n", pair)
					os.Exit(2)
				}
				f, err := os.Open(file)
				if err != nil {
					fmt.Fprintln(os.Stderr, "crackbench:", err)
					os.Exit(1)
				}
				samples, err := bench.ParseBench(f)
				f.Close()
				if err != nil {
					fmt.Fprintln(os.Stderr, "crackbench:", err)
					os.Exit(1)
				}
				extra = append(extra, bench.KernelRows(label, samples)...)
			}
		}
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crackbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		t0 := time.Now()
		err := bench.WriteJSON(bench.Config{N: *n, Q: *q, S: *s, Seed: *seed}, out, extra)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "json report written to %s (%v)\n", *jsonOut, time.Since(t0).Round(time.Millisecond))
		return
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crackbench:", err)
			os.Exit(1)
		}
		r := bench.NewReport(bench.Config{N: *n, Q: *q, S: *s, Seed: *seed})
		t0 := time.Now()
		if err := r.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, "crackbench: report:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "crackbench:", err)
			os.Exit(1)
		}
		passed, total := r.Checks()
		fmt.Printf("report written to %s: %d/%d shape checks passed (%v)\n",
			*report, passed, total, time.Since(t0).Round(time.Millisecond))
		return
	}
	cfg := bench.Config{N: *n, Q: *q, S: *s, Seed: *seed, Validate: *validate}

	if *plot {
		specs := strings.Split(*plotAlgos, ",")
		for i := range specs {
			specs[i] = strings.TrimSpace(specs[i])
		}
		if err := bench.PlotCell(cfg, os.Stdout, *plotWl, specs); err != nil {
			fmt.Fprintln(os.Stderr, "crackbench:", err)
			os.Exit(1)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "crackbench: -experiment required; one of:", bench.IDs())
		os.Exit(2)
	}

	var todo []bench.Experiment
	if *experiment == "all" {
		todo = bench.All()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "crackbench: unknown experiment %q; known: %s\n", id, bench.IDs())
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		fmt.Printf("==== %s: %s\n", e.ID, e.Title)
		fmt.Printf("==== N=%d Q=%d S=%d seed=%d\n", cfg.N, cfg.Q, cfg.S, cfg.Seed)
		t0 := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "crackbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s done in %v\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}
