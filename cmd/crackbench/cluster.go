package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/server"
)

// clusterExperiment measures the distributed layer end to end, entirely
// in-process: it slices the paper's permutation of [0, n) across
// `backends` local crackserver nodes, boots a scatter-gather coordinator
// over them, and replays the paper's workloads through the coordinator
// with every answer validated against the closed-form oracle (the
// coordinator reports cluster-wide permutation data, so RunLoad
// validates exactly as it does against one server).
//
// It then measures what live migration is worth: an empty joiner node
// comes up, the coordinator moves the top half of the last backend's
// range to it — snapshot-streamed, so the joiner inherits the donor's
// cracks — and the workload replays again through the new topology. The
// migration row records the joiner's restored piece count: non-zero
// means it serves warm, resuming refinement instead of re-paying it.
//
// Rows slot into the crackdb-bench/v1 schema under experiments
// "cluster" (one row per workload, before and after migration) and
// "cluster-migrate" (the migration itself).
func clusterExperiment(n int64, q int, s int64, seed uint64, backends, clients int, out io.Writer) ([]bench.JSONRow, error) {
	if backends < 2 {
		backends = 3
	}
	ctx := context.Background()
	clusterAlgo := func(nodes int) string { return fmt.Sprintf("cluster-%d(dd1r)", nodes) }
	algo := clusterAlgo(backends)

	// Boot the backends, each owning an equal slice of the value domain.
	var urls []string
	var nodes []*cluster.LocalNode
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	for i := 0; i < backends; i++ {
		lo := n * int64(i) / int64(backends)
		hi := n * int64(i+1) / int64(backends)
		nd, err := cluster.StartLocalNode(cluster.LocalNodeConfig{
			N: n, Seed: seed, Lo: lo, Hi: hi, Algorithm: "dd1r",
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %d: %w", i, err)
		}
		nodes = append(nodes, nd)
		urls = append(urls, nd.URL)
		fmt.Fprintf(out, "backend %d: %s owns [%d, %d)\n", i, nd.URL, lo, hi)
	}

	bootCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	coord, err := cluster.New(bootCtx, urls, cluster.Config{})
	cancel()
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: coord.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	coordURL := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "coordinator: %s over %d backends, %d rows\n\n", coordURL, backends, coord.Rows())

	var rows []bench.JSONRow
	replay := func(phase, algo string, pieces func() int) error {
		res, err := server.RunLoad(ctx, server.LoadConfig{
			URL: coordURL, Clients: clients, Q: q, S: s, Seed: seed, Aggregate: true,
		}, out)
		if err != nil {
			return err
		}
		if !res.Validated {
			return fmt.Errorf("cluster: %s run was not oracle-validated (coordinator did not report permutation data)", phase)
		}
		for _, wl := range res.Workloads {
			rows = append(rows, bench.JSONRow{
				Experiment: "cluster", Algorithm: algo, Workload: phase + "-" + wl.Name,
				N: n, Q: int64(wl.Queries), Oracle: "ok",
				PerQueryNS: wl.P50.Nanoseconds(),
				TotalNS:    res.Elapsed.Nanoseconds(),
				Pieces:     pieces(),
			})
		}
		return nil
	}
	if err := replay("scatter", algo, func() int { return 0 }); err != nil {
		return rows, err
	}

	// Live migration: an empty joiner takes the top half of the last
	// backend's range while the cluster keeps its routing invariants.
	joiner, err := cluster.StartLocalNode(cluster.LocalNodeConfig{Algorithm: "dd1r"})
	if err != nil {
		return rows, fmt.Errorf("cluster: joiner: %w", err)
	}
	nodes = append(nodes, joiner)
	lastLo := n * int64(backends-1) / int64(backends)
	moveLo := lastLo + (n-lastLo)/2
	// The moved range must touch the donor's edge; the last route owns up
	// to the domain top, so the move does too (data values stay < n).
	mig, err := coord.Migrate(ctx, joiner.URL, moveLo, math.MaxInt64)
	if err != nil {
		return rows, fmt.Errorf("cluster: migrate: %w", err)
	}
	fmt.Fprintf(out, "\nmigrated [%d, +inf) from %s to %s: %d rows, %d pieces restored (warm), %d pending, %dms\n\n",
		moveLo, mig.From, mig.To, mig.Rows, mig.Pieces, mig.Pending, mig.ElapsedMS)
	migRow := bench.JSONRow{
		Experiment: "cluster-migrate", Algorithm: algo, Workload: "warm-join",
		N: n, Q: int64(mig.Rows), Oracle: "ok",
		TotalNS: mig.ElapsedMS * int64(time.Millisecond),
		Pieces:  mig.Pieces,
	}
	if mig.Pieces < 2 {
		migRow.Oracle = fmt.Sprintf("joiner restored only %d pieces: migration did not carry the donor's cracks", mig.Pieces)
	}
	if mig.Rows > 0 {
		migRow.PerQueryNS = migRow.TotalNS / int64(mig.Rows) // ns per row moved
	}
	rows = append(rows, migRow)
	if migRow.Oracle != "ok" {
		return rows, fmt.Errorf("cluster: %s", migRow.Oracle)
	}

	// The replay after the swap proves the new topology serves the same
	// oracle-correct answers — now across one more node.
	if err := replay("post-migrate", clusterAlgo(backends+1), func() int { return mig.Pieces }); err != nil {
		return rows, err
	}
	return rows, nil
}
