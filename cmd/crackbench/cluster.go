package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/cluster/client"
	"repro/internal/cluster/faultproxy"
	"repro/internal/server"
	"repro/internal/xrand"
)

// clusterExperiment measures the distributed layer end to end, entirely
// in-process: it slices the paper's permutation of [0, n) across
// `backends` local crackserver nodes, boots a scatter-gather coordinator
// over them, and replays the paper's workloads through the coordinator
// with every answer validated against the closed-form oracle (the
// coordinator reports cluster-wide permutation data, so RunLoad
// validates exactly as it does against one server).
//
// It then measures what live migration is worth: an empty joiner node
// comes up, the coordinator moves the top half of the last backend's
// range to it — snapshot-streamed, so the joiner inherits the donor's
// cracks — and the workload replays again through the new topology. The
// migration row records the joiner's restored piece count: non-zero
// means it serves warm, resuming refinement instead of re-paying it.
//
// Rows slot into the crackdb-bench/v1 schema under experiments
// "cluster" (one row per workload, before and after migration) and
// "cluster-migrate" (the migration itself).
func clusterExperiment(n int64, q int, s int64, seed uint64, backends, clients int, out io.Writer) ([]bench.JSONRow, error) {
	if backends < 2 {
		backends = 3
	}
	ctx := context.Background()
	clusterAlgo := func(nodes int) string { return fmt.Sprintf("cluster-%d(dd1r)", nodes) }
	algo := clusterAlgo(backends)

	// Boot the backends, each owning an equal slice of the value domain.
	var urls []string
	var nodes []*cluster.LocalNode
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	for i := 0; i < backends; i++ {
		lo := n * int64(i) / int64(backends)
		hi := n * int64(i+1) / int64(backends)
		nd, err := cluster.StartLocalNode(cluster.LocalNodeConfig{
			N: n, Seed: seed, Lo: lo, Hi: hi, Algorithm: "dd1r",
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %d: %w", i, err)
		}
		nodes = append(nodes, nd)
		urls = append(urls, nd.URL)
		fmt.Fprintf(out, "backend %d: %s owns [%d, %d)\n", i, nd.URL, lo, hi)
	}

	bootCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	coord, err := cluster.New(bootCtx, urls, cluster.Config{})
	cancel()
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: coord.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	coordURL := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "coordinator: %s over %d backends, %d rows\n\n", coordURL, backends, coord.Rows())

	var rows []bench.JSONRow
	replay := func(phase, algo string, pieces func() int) error {
		res, err := server.RunLoad(ctx, server.LoadConfig{
			URL: coordURL, Clients: clients, Q: q, S: s, Seed: seed, Aggregate: true,
		}, out)
		if err != nil {
			return err
		}
		if !res.Validated {
			return fmt.Errorf("cluster: %s run was not oracle-validated (coordinator did not report permutation data)", phase)
		}
		for _, wl := range res.Workloads {
			rows = append(rows, bench.JSONRow{
				Experiment: "cluster", Algorithm: algo, Workload: phase + "-" + wl.Name,
				N: n, Q: int64(wl.Queries), Oracle: "ok",
				PerQueryNS: wl.P50.Nanoseconds(),
				TotalNS:    res.Elapsed.Nanoseconds(),
				Pieces:     pieces(),
			})
		}
		return nil
	}
	if err := replay("scatter", algo, func() int { return 0 }); err != nil {
		return rows, err
	}

	// Live migration: an empty joiner takes the top half of the last
	// backend's range while the cluster keeps its routing invariants.
	joiner, err := cluster.StartLocalNode(cluster.LocalNodeConfig{Algorithm: "dd1r"})
	if err != nil {
		return rows, fmt.Errorf("cluster: joiner: %w", err)
	}
	nodes = append(nodes, joiner)
	lastLo := n * int64(backends-1) / int64(backends)
	moveLo := lastLo + (n-lastLo)/2
	// The moved range must touch the donor's edge; the last route owns up
	// to the domain top, so the move does too (data values stay < n).
	mig, err := coord.Migrate(ctx, joiner.URL, moveLo, math.MaxInt64)
	if err != nil {
		return rows, fmt.Errorf("cluster: migrate: %w", err)
	}
	fmt.Fprintf(out, "\nmigrated [%d, +inf) from %s to %s: %d rows, %d pieces restored (warm), %d pending, %dms\n\n",
		moveLo, mig.From, mig.To, mig.Rows, mig.Pieces, mig.Pending, mig.ElapsedMS)
	migRow := bench.JSONRow{
		Experiment: "cluster-migrate", Algorithm: algo, Workload: "warm-join",
		N: n, Q: int64(mig.Rows), Oracle: "ok",
		TotalNS: mig.ElapsedMS * int64(time.Millisecond),
		Pieces:  mig.Pieces,
	}
	if mig.Pieces < 2 {
		migRow.Oracle = fmt.Sprintf("joiner restored only %d pieces: migration did not carry the donor's cracks", mig.Pieces)
	}
	if mig.Rows > 0 {
		migRow.PerQueryNS = migRow.TotalNS / int64(mig.Rows) // ns per row moved
	}
	rows = append(rows, migRow)
	if migRow.Oracle != "ok" {
		return rows, fmt.Errorf("cluster: %s", migRow.Oracle)
	}

	// The replay after the swap proves the new topology serves the same
	// oracle-correct answers — now across one more node.
	if err := replay("post-migrate", clusterAlgo(backends+1), func() int { return mig.Pieces }); err != nil {
		return rows, err
	}
	return rows, nil
}

// killReplicaExperiment measures what per-range replication buys when a
// backend actually dies: availability (failed requests per million) and
// p99 latency during the kill window, replicated (2 copies per range)
// versus unreplicated (1 copy), plus the warm-pieces evidence that a
// full-node drain re-homes sole-copy ranges with their refinement
// intact.
//
// Both arms run the same storm: `clients` workers issue oracle-checked
// aggregate queries through a live coordinator whose backends sit
// behind fault proxies; once a quarter of the budget has completed, one
// backend's proxy is killed (connection refused — a crashed process)
// and the rest of the run is the "kill window". The unreplicated arm
// keeps serving its surviving range and fails the dead one — its error
// rate IS the availability cost. The replicated arm must absorb the
// kill completely: any failed request or oracle mismatch fails the
// whole experiment, mirroring TestReplicatedClusterSurvivesBackendKill.
//
// Rows slot into crackdb-bench/v1 under experiment "cluster-kill":
// per-arm `replicas=R:kill-window-p99` (PerQueryNS = p99 of successful
// kill-window requests) and `replicas=R:kill-window-error-ppm`
// (PerQueryNS = failed requests per million in the window, Q = the raw
// failure count), and `replicas=2:drain-migrate-pieces` (Pieces = the
// refinement carried by the drain's migrate move).
func killReplicaExperiment(n int64, q int, seed uint64, clients int, out io.Writer) ([]bench.JSONRow, error) {
	const ranges = 2
	var rows []bench.JSONRow
	for _, replicas := range []int{1, 2} {
		algo := fmt.Sprintf("cluster-%dx%d(dd1r)", ranges, replicas)
		r, err := killReplicaArm(n, q, seed, ranges, replicas, clients, algo, out)
		rows = append(rows, r...)
		if err != nil {
			return rows, err
		}
	}
	return rows, nil
}

// killWindow accumulates per-request outcomes observed after the kill.
type killWindow struct {
	mu         sync.Mutex
	latencies  []time.Duration
	errs       int64
	mismatches int64
	began      time.Time
}

func killReplicaArm(n int64, q int, seed uint64, ranges, replicas, clients int, algo string, out io.Writer) ([]bench.JSONRow, error) {
	// Backends behind fault proxies: replica k of range r serves the same
	// [lo, hi) slice as its siblings.
	var urls []string
	proxies := make([][]*faultproxy.Proxy, ranges)
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for r := 0; r < ranges; r++ {
		lo := n * int64(r) / int64(ranges)
		hi := n * int64(r+1) / int64(ranges)
		for k := 0; k < replicas; k++ {
			nd, err := cluster.StartLocalNode(cluster.LocalNodeConfig{
				N: n, Seed: seed, Lo: lo, Hi: hi, Algorithm: "dd1r",
			})
			if err != nil {
				return nil, fmt.Errorf("cluster-kill: range %d replica %d: %w", r, k, err)
			}
			closers = append(closers, nd.Close)
			p, err := faultproxy.New(nd.URL, uint64(r*10+k+1))
			if err != nil {
				return nil, fmt.Errorf("cluster-kill: proxy for range %d replica %d: %w", r, k, err)
			}
			closers = append(closers, p.Close)
			proxies[r] = append(proxies[r], p)
			urls = append(urls, p.URL())
		}
	}

	bootCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	coord, err := cluster.New(bootCtx, urls, cluster.Config{
		Replicas:       replicas,
		HealthInterval: 50 * time.Millisecond,
		Client: client.Config{
			Timeout: 5 * time.Second, Retries: 1,
			Backoff: 5 * time.Millisecond, HedgeDelay: 25 * time.Millisecond,
		},
	})
	cancel()
	if err != nil {
		return nil, fmt.Errorf("cluster-kill: coordinator (%d replicas): %w", replicas, err)
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: coord.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	coordURL := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "cluster-kill: %d ranges x %d replicas behind %s\n", ranges, replicas, coordURL)

	// The storm. Every worker checks each answer against the closed-form
	// permutation oracle; whichever request crosses the quarter mark
	// kills the last replica of range 0.
	perWorker := q / clients
	if perWorker < 20 {
		perWorker = 20
	}
	total := int64(perWorker * clients)
	var completed atomic.Int64
	var killOnce sync.Once
	win := &killWindow{}
	victim := proxies[0][len(proxies[0])-1]
	httpc := &http.Client{Timeout: 10 * time.Second}
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(seed + uint64(w)*7919)
			for i := 0; i < perWorker; i++ {
				width := 1 + rng.Int63n(n/8)
				a := rng.Int63n(n - width)
				b := a + width
				start := time.Now()
				cnt, sum, err := clusterAggQuery(httpc, coordURL, a, b)
				lat := time.Since(start)
				win.mu.Lock()
				inWindow := !win.began.IsZero()
				if inWindow {
					if err != nil {
						win.errs++
					} else {
						win.latencies = append(win.latencies, lat)
						if cnt != b-a || sum != (a+b-1)*(b-a)/2 {
							win.mismatches++
						}
					}
				}
				win.mu.Unlock()
				if !inWindow && err == nil && (cnt != b-a || sum != (a+b-1)*(b-a)/2) {
					win.mu.Lock()
					win.mismatches++
					win.mu.Unlock()
				}
				if completed.Add(1) >= total/4 {
					killOnce.Do(func() {
						victim.Kill()
						win.mu.Lock()
						win.began = time.Now()
						win.mu.Unlock()
						fmt.Fprintf(out, "cluster-kill: killed a range-0 replica after %d requests\n", completed.Load())
					})
				}
			}
		}(w)
	}
	wg.Wait()

	windowTotal := int64(len(win.latencies)) + win.errs
	p99 := time.Duration(0)
	if len(win.latencies) > 0 {
		sort.Slice(win.latencies, func(i, j int) bool { return win.latencies[i] < win.latencies[j] })
		p99 = win.latencies[len(win.latencies)*99/100]
	}
	ppm := int64(0)
	if windowTotal > 0 {
		ppm = win.errs * 1_000_000 / windowTotal
	}
	verdict := "ok"
	if win.mismatches > 0 {
		verdict = fmt.Sprintf("%d oracle mismatches", win.mismatches)
	}
	fmt.Fprintf(out, "cluster-kill: replicas=%d window: %d requests, %d failed (%d ppm), p99 %v, %d mismatches\n",
		replicas, windowTotal, win.errs, ppm, p99, win.mismatches)
	rows := []bench.JSONRow{
		{
			Experiment: "cluster-kill", Algorithm: algo,
			Workload: fmt.Sprintf("replicas=%d:kill-window-p99", replicas),
			N:        n, Q: windowTotal, PerQueryNS: p99.Nanoseconds(), Oracle: verdict,
		},
		{
			Experiment: "cluster-kill", Algorithm: algo,
			Workload: fmt.Sprintf("replicas=%d:kill-window-error-ppm", replicas),
			N:        n, Q: win.errs, PerQueryNS: ppm, Oracle: verdict,
		},
	}
	if win.mismatches > 0 {
		return rows, fmt.Errorf("cluster-kill: replicas=%d: %d oracle mismatches", replicas, win.mismatches)
	}
	if replicas > 1 && win.errs > 0 {
		return rows, fmt.Errorf("cluster-kill: replicated arm saw %d failed requests during the kill window, want 0", win.errs)
	}

	if replicas > 1 {
		// Drain both replicas of range 1: the first is a pure handoff (its
		// sibling keeps serving), the second forces a migrate whose Pieces
		// count proves the re-homed range arrived warm.
		ctx := context.Background()
		pieces := 0
		for k := replicas - 1; k >= 0; k-- {
			resp, err := coord.Drain(ctx, proxies[1][k].URL())
			if err != nil {
				return rows, fmt.Errorf("cluster-kill: drain replica %d of range 1: %w", k, err)
			}
			for _, mv := range resp.Moves {
				fmt.Fprintf(out, "cluster-kill: drain %s: [%d, %d) -> %s (%s, %d pieces)\n",
					resp.Backend, mv.Lo, mv.Hi, mv.To, mv.Mode, mv.Pieces)
				if mv.Mode == "migrate" {
					pieces += mv.Pieces
				}
			}
		}
		// The drained topology must still answer correctly.
		rng := xrand.New(seed + 99)
		for i := 0; i < 20; i++ {
			width := 1 + rng.Int63n(n/4)
			a := rng.Int63n(n - width)
			cnt, sum, err := clusterAggQuery(httpc, coordURL, a, a+width)
			if err != nil {
				return rows, fmt.Errorf("cluster-kill: post-drain query: %w", err)
			}
			if cnt != width || sum != (2*a+width-1)*width/2 {
				return rows, fmt.Errorf("cluster-kill: post-drain mismatch on [%d, %d)", a, a+width)
			}
		}
		drainRow := bench.JSONRow{
			Experiment: "cluster-kill", Algorithm: algo,
			Workload: "replicas=2:drain-migrate-pieces",
			N:        n, Oracle: "ok", Pieces: pieces,
		}
		if pieces < 2 {
			drainRow.Oracle = fmt.Sprintf("drain migrate restored only %d pieces: the re-homed range arrived cold", pieces)
		}
		rows = append(rows, drainRow)
		if drainRow.Oracle != "ok" {
			return rows, fmt.Errorf("cluster-kill: %s", drainRow.Oracle)
		}
	}
	return rows, nil
}

// clusterAggQuery issues one aggregate range query and decodes the
// single (count, sum) result.
func clusterAggQuery(httpc *http.Client, base string, lo, hi int64) (int64, int64, error) {
	body := fmt.Sprintf(`{"lo":%d,"hi":%d,"aggregate":true}`, lo, hi)
	resp, err := httpc.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("query [%d, %d): status %d: %s", lo, hi, resp.StatusCode, data)
	}
	var qr struct {
		Results []struct {
			Count int64 `json:"count"`
			Sum   int64 `json:"sum"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &qr); err != nil || len(qr.Results) != 1 {
		return 0, 0, fmt.Errorf("query [%d, %d): bad body %s", lo, hi, data)
	}
	return qr.Results[0].Count, qr.Results[0].Sum, nil
}
