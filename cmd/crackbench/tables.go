package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"

	crackdb "repro"
	"repro/internal/bench"
	"repro/internal/catalog"
	"repro/internal/server"
)

// tablesExperiment smoke-tests multi-tenant catalog mode end to end,
// entirely in-process: it boots a two-table catalog server over a shared
// snapshot store, replays the paper's workloads against each table with
// every answer oracle-validated (each table is its own permutation of
// [0, rows)), snapshots every table into the store, shuts the catalog
// down, boots a fresh one from the same store, asserts both tables come
// back warm (restored, pieces carried over), and replays the validated
// load again.
//
// That is exactly the crackserver -tables -snapshot-store lifecycle —
// build, serve, snapshot, warm restart — with the process boundary
// replaced by a second in-process boot. Rows slot into the
// crackdb-bench/v1 schema under experiment "tables", phases "cold" and
// "warm"; warm rows carry the restored piece count.
func tablesExperiment(n int64, q int, s int64, seed uint64, clients int, out io.Writer) ([]bench.JSONRow, error) {
	ctx := context.Background()
	store := crackdb.NewMemSnapshotStore()
	specs := []struct {
		name string
		rows int64
	}{{"alpha", n}, {"beta", max(n/2, 1_000)}}

	// boot builds a catalog over the shared store: warm for tables the
	// store already holds, cold otherwise — the same decision crackserver
	// -tables -snapshot-store makes at startup.
	boot := func() (url string, shutdown func(), err error) {
		cat := catalog.New(catalog.Config{})
		var dbs []*crackdb.DB
		closeAll := func() {
			for _, db := range dbs {
				db.Close()
			}
		}
		for i, spec := range specs {
			key := "tables/" + spec.name + ".crks"
			tseed := seed + uint64(i)*1000 + 1
			opts := []crackdb.Option{crackdb.WithSeed(tseed), crackdb.WithConcurrency(crackdb.Shared)}
			db, err := crackdb.OpenSnapshotFrom(store, key, crackdb.DD1R, opts...)
			restored := err == nil
			if err != nil {
				if !errors.Is(err, fs.ErrNotExist) {
					closeAll()
					return "", nil, fmt.Errorf("tables: %s: warm start: %w", spec.name, err)
				}
				db, err = crackdb.Open(crackdb.MakeData(spec.rows, tseed), crackdb.DD1R, opts...)
				if err != nil {
					closeAll()
					return "", nil, fmt.Errorf("tables: %s: %w", spec.name, err)
				}
			}
			dbs = append(dbs, db)
			srv := server.New(db, server.Config{
				Info:          server.Info{Rows: spec.rows, Algorithm: crackdb.DD1R, Seed: tseed, Permutation: true},
				SnapshotStore: store,
				SnapshotKey:   key,
				Restored:      restored,
			})
			if err := cat.Add(spec.name, srv); err != nil {
				closeAll()
				return "", nil, err
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return "", nil, err
		}
		hs := &http.Server{Handler: cat.Handler()}
		go func() { _ = hs.Serve(ln) }()
		return "http://" + ln.Addr().String(), func() { hs.Close(); closeAll() }, nil
	}

	var rows []bench.JSONRow
	// replay runs the validated workloads against every table of the
	// catalog at url and appends one row per (table, workload).
	replay := func(url, phase string, warm bool) error {
		for _, spec := range specs {
			fmt.Fprintf(out, "-- %s: table %s (%d rows) --\n", phase, spec.name, spec.rows)
			c := server.NewClient(url, nil, server.WithTable(spec.name))
			h, err := c.Health(ctx)
			if err != nil {
				return fmt.Errorf("tables: %s health: %w", spec.name, err)
			}
			if warm {
				if !h.Restored {
					return fmt.Errorf("tables: %s: expected a warm start, health reports cold", spec.name)
				}
				if h.Pieces < 2 {
					return fmt.Errorf("tables: %s: warm start restored only %d pieces", spec.name, h.Pieces)
				}
				fmt.Fprintf(out, "table %s: warm, %d pieces restored\n", spec.name, h.Pieces)
			}
			res, err := server.RunLoad(ctx, server.LoadConfig{
				URL: url, Table: spec.name, Clients: clients,
				Q: q, S: s, Seed: seed, Aggregate: true,
			}, out)
			if err != nil {
				return fmt.Errorf("tables: %s: %w", spec.name, err)
			}
			if !res.Validated {
				return fmt.Errorf("tables: %s: %s run was not oracle-validated", spec.name, phase)
			}
			for _, wl := range res.Workloads {
				rows = append(rows, bench.JSONRow{
					Experiment: "tables", Algorithm: "catalog(dd1r)",
					Workload: phase + "-" + spec.name + "-" + wl.Name,
					N:        spec.rows, Q: int64(wl.Queries), Oracle: "ok",
					PerQueryNS: wl.P50.Nanoseconds(),
					TotalNS:    res.Elapsed.Nanoseconds(),
					Pieces:     res.PiecesTo,
				})
			}
		}
		return nil
	}

	url, shutdown, err := boot()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "catalog: %s serving %d tables over a shared snapshot store\n\n", url, len(specs))
	if err := replay(url, "cold", false); err != nil {
		shutdown()
		return rows, err
	}
	for _, spec := range specs {
		c := server.NewClient(url, nil, server.WithTable(spec.name))
		info, err := c.Snapshot(ctx, false)
		if err != nil {
			shutdown()
			return rows, fmt.Errorf("tables: %s snapshot: %w", spec.name, err)
		}
		fmt.Fprintf(out, "table %s: snapshot -> %s (%d pieces, %d pending)\n",
			spec.name, info.Path, info.Pieces, info.Pending)
	}
	shutdown()

	// Warm restart: a brand-new catalog over the same store must resume
	// every table's adaptation and answer identically.
	url, shutdown, err = boot()
	if err != nil {
		return rows, err
	}
	defer shutdown()
	fmt.Fprintf(out, "\ncatalog restarted: %s\n\n", url)
	if err := replay(url, "warm", true); err != nil {
		return rows, err
	}
	fmt.Fprintf(out, "\ntables smoke passed: %d tables cold + warm, all answers oracle-validated\n", len(specs))
	return rows, nil
}
