package crackdb_test

import (
	"math"
	"testing"

	crackdb "repro"
)

func TestPredicateNormalization(t *testing.T) {
	cases := []struct {
		p      crackdb.Predicate
		lo, hi int64
	}{
		{crackdb.Range(10, 20), 10, 20},
		{crackdb.Between(10, 20), 10, 21},
		{crackdb.Less(10), math.MinInt64, 10},
		{crackdb.LessEq(10), math.MinInt64, 11},
		{crackdb.Greater(10), 11, math.MaxInt64},
		{crackdb.GreaterEq(10), 10, math.MaxInt64},
		{crackdb.Eq(10), 10, 11},
		{crackdb.LessEq(math.MaxInt64), math.MinInt64, math.MaxInt64},
	}
	for _, c := range cases {
		lo, hi := c.p.Bounds()
		if lo != c.lo || hi != c.hi {
			t.Errorf("%v bounds = [%d,%d), want [%d,%d)", c.p, lo, hi, c.lo, c.hi)
		}
	}
}

func TestPredicateAnd(t *testing.T) {
	// The paper's Fig. 1 queries: Q1 = A > 10 AND A < 14; Q2 = A >= 7 AND
	// A <= 16.
	q1 := crackdb.Greater(10).And(crackdb.Less(14))
	if lo, hi := q1.Bounds(); lo != 11 || hi != 14 {
		t.Fatalf("Q1 bounds = [%d,%d)", lo, hi)
	}
	q2 := crackdb.GreaterEq(7).And(crackdb.LessEq(16))
	if lo, hi := q2.Bounds(); lo != 7 || hi != 17 {
		t.Fatalf("Q2 bounds = [%d,%d)", lo, hi)
	}
	if !crackdb.Greater(10).And(crackdb.Less(5)).Empty() {
		t.Fatal("contradictory predicate not empty")
	}
}

func TestPredicateString(t *testing.T) {
	if s := crackdb.Range(1, 2).And(crackdb.Range(5, 6)).String(); s != "false" {
		t.Fatalf("empty String = %q", s)
	}
	if s := crackdb.Less(5).String(); s != "v < 5" {
		t.Fatalf("Less String = %q", s)
	}
	if s := crackdb.GreaterEq(5).String(); s != "v >= 5" {
		t.Fatalf("GreaterEq String = %q", s)
	}
	if s := crackdb.Range(1, 5).String(); s != "1 <= v < 5" {
		t.Fatalf("Range String = %q", s)
	}
}

func TestPredicateOr(t *testing.T) {
	// Disjoint union: multi-range predicate, ascending order.
	p := crackdb.Range(10, 20).Or(crackdb.Range(40, 50))
	if p.Empty() {
		t.Fatal("disjoint union empty")
	}
	if lo, hi := p.Bounds(); lo != 10 || hi != 50 {
		t.Fatalf("envelope = [%d,%d)", lo, hi)
	}
	if s := p.String(); s != "10 <= v < 20 OR 40 <= v < 50" {
		t.Fatalf("String = %q", s)
	}
	// Overlapping and adjacent ranges coalesce back to a single range.
	if s := crackdb.Range(10, 20).Or(crackdb.Range(15, 30)).String(); s != "10 <= v < 30" {
		t.Fatalf("overlap String = %q", s)
	}
	if s := crackdb.Range(10, 20).Or(crackdb.Range(20, 30)).String(); s != "10 <= v < 30" {
		t.Fatalf("adjacent String = %q", s)
	}
	// Empty operands are identity.
	if s := crackdb.Range(5, 5).Or(crackdb.Eq(7)).String(); s != "7 <= v < 8" {
		t.Fatalf("empty-or String = %q", s)
	}
	// Matches follows the union.
	for v, want := range map[int64]bool{9: false, 10: true, 25: false, 45: true, 50: false} {
		if p.Matches(v) != want {
			t.Fatalf("Matches(%d) = %v", v, p.Matches(v))
		}
	}
}

func TestPredicateAndMultiRange(t *testing.T) {
	// (10..30 ∪ 50..70) ∩ 20..60 = 20..30 ∪ 50..60
	p := crackdb.Range(10, 30).Or(crackdb.Range(50, 70)).And(crackdb.Range(20, 60))
	if s := p.String(); s != "20 <= v < 30 OR 50 <= v < 60" {
		t.Fatalf("intersection String = %q", s)
	}
	// Intersection can empty the predicate entirely.
	if !crackdb.Range(10, 20).Or(crackdb.Range(40, 50)).And(crackdb.Range(25, 35)).Empty() {
		t.Fatal("disjoint intersection not empty")
	}
	// Multi ∩ multi.
	q := crackdb.Range(15, 45).Or(crackdb.Range(60, 80))
	got := crackdb.Range(10, 30).Or(crackdb.Range(50, 70)).And(q)
	if s := got.String(); s != "15 <= v < 30 OR 60 <= v < 70" {
		t.Fatalf("multi-multi String = %q", s)
	}
}

func TestPredicateOn(t *testing.T) {
	p := crackdb.Between(10, 20).On("ra")
	if p.Column() != "ra" {
		t.Fatalf("column = %q", p.Column())
	}
	if s := p.String(); s != "10 <= ra < 21" {
		t.Fatalf("String = %q", s)
	}
	// Scope survives composition, whichever side carries it.
	if crackdb.Eq(1).On("x").Or(crackdb.Eq(5)).Column() != "x" {
		t.Fatal("Or dropped the column")
	}
	if crackdb.Eq(1).And(crackdb.Eq(1).On("y")).Column() != "y" {
		t.Fatal("And dropped the column")
	}
}

func TestQueryWhere(t *testing.T) {
	ix, err := crackdb.New(crackdb.MakeData(10_000, 7), crackdb.Crack)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1's Q1 on a dense domain: A > 10 AND A < 14 selects {11,12,13}.
	res := ix.QueryWhere(crackdb.Greater(10).And(crackdb.Less(14)))
	if res.Count() != 3 || res.Sum() != 36 {
		t.Fatalf("Q1: count=%d sum=%d", res.Count(), res.Sum())
	}
	if res := ix.QueryWhere(crackdb.Eq(42)); res.Count() != 1 || res.Sum() != 42 {
		t.Fatal("Eq predicate failed")
	}
	if res := ix.QueryWhere(crackdb.Greater(20).And(crackdb.Less(10))); res.Count() != 0 {
		t.Fatal("empty predicate returned rows")
	}
	// Unbounded sides work: everything below 100.
	if res := ix.QueryWhere(crackdb.Less(100)); res.Count() != 100 {
		t.Fatalf("Less(100) count = %d", res.Count())
	}
	if res := ix.QueryWhere(crackdb.GreaterEq(9_900)); res.Count() != 100 {
		t.Fatalf("GreaterEq count = %d", res.Count())
	}
}

func TestFacadeTable(t *testing.T) {
	n := 5000
	a := crackdb.MakeData(int64(n), 8)
	b := make([]int64, n)
	for i, v := range a {
		b[i] = v * 3
	}
	tbl, err := crackdb.NewTable(map[string][]int64{"a": a, "b": b}, crackdb.DD1R, crackdb.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != n || len(tbl.Columns()) != 2 {
		t.Fatal("table shape wrong")
	}
	sel, err := tbl.Select("a", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 100 {
		t.Fatalf("select returned %d", len(sel))
	}
	proj, err := tbl.SelectProject("a", "b", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range proj {
		sum += v
	}
	var want int64
	for v := int64(100); v < 200; v++ {
		want += v * 3
	}
	if sum != want {
		t.Fatalf("projection sum = %d, want %d", sum, want)
	}
	side, err := tbl.SelectProjectSideways("a", "b", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	sum = 0
	for _, v := range side {
		sum += v
	}
	if sum != want {
		t.Fatalf("sideways sum = %d, want %d", sum, want)
	}
	if tbl.Stats().Touched == 0 {
		t.Fatal("no physical work recorded")
	}
}
