package crackdb_test

import (
	"math"
	"testing"

	crackdb "repro"
)

func TestPredicateNormalization(t *testing.T) {
	cases := []struct {
		p      crackdb.Predicate
		lo, hi int64
	}{
		{crackdb.Range(10, 20), 10, 20},
		{crackdb.Between(10, 20), 10, 21},
		{crackdb.Less(10), math.MinInt64, 10},
		{crackdb.LessEq(10), math.MinInt64, 11},
		{crackdb.Greater(10), 11, math.MaxInt64},
		{crackdb.GreaterEq(10), 10, math.MaxInt64},
		{crackdb.Eq(10), 10, 11},
		{crackdb.LessEq(math.MaxInt64), math.MinInt64, math.MaxInt64},
	}
	for _, c := range cases {
		lo, hi := c.p.Bounds()
		if lo != c.lo || hi != c.hi {
			t.Errorf("%v bounds = [%d,%d), want [%d,%d)", c.p, lo, hi, c.lo, c.hi)
		}
	}
}

func TestPredicateAnd(t *testing.T) {
	// The paper's Fig. 1 queries: Q1 = A > 10 AND A < 14; Q2 = A >= 7 AND
	// A <= 16.
	q1 := crackdb.Greater(10).And(crackdb.Less(14))
	if lo, hi := q1.Bounds(); lo != 11 || hi != 14 {
		t.Fatalf("Q1 bounds = [%d,%d)", lo, hi)
	}
	q2 := crackdb.GreaterEq(7).And(crackdb.LessEq(16))
	if lo, hi := q2.Bounds(); lo != 7 || hi != 17 {
		t.Fatalf("Q2 bounds = [%d,%d)", lo, hi)
	}
	if !crackdb.Greater(10).And(crackdb.Less(5)).Empty() {
		t.Fatal("contradictory predicate not empty")
	}
}

func TestPredicateString(t *testing.T) {
	if s := crackdb.Range(1, 2).And(crackdb.Range(5, 6)).String(); s != "false" {
		t.Fatalf("empty String = %q", s)
	}
	if s := crackdb.Less(5).String(); s != "v < 5" {
		t.Fatalf("Less String = %q", s)
	}
	if s := crackdb.GreaterEq(5).String(); s != "v >= 5" {
		t.Fatalf("GreaterEq String = %q", s)
	}
	if s := crackdb.Range(1, 5).String(); s != "1 <= v < 5" {
		t.Fatalf("Range String = %q", s)
	}
}

func TestQueryWhere(t *testing.T) {
	ix, err := crackdb.New(crackdb.MakeData(10_000, 7), crackdb.Crack)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1's Q1 on a dense domain: A > 10 AND A < 14 selects {11,12,13}.
	res := ix.QueryWhere(crackdb.Greater(10).And(crackdb.Less(14)))
	if res.Count() != 3 || res.Sum() != 36 {
		t.Fatalf("Q1: count=%d sum=%d", res.Count(), res.Sum())
	}
	if res := ix.QueryWhere(crackdb.Eq(42)); res.Count() != 1 || res.Sum() != 42 {
		t.Fatal("Eq predicate failed")
	}
	if res := ix.QueryWhere(crackdb.Greater(20).And(crackdb.Less(10))); res.Count() != 0 {
		t.Fatal("empty predicate returned rows")
	}
	// Unbounded sides work: everything below 100.
	if res := ix.QueryWhere(crackdb.Less(100)); res.Count() != 100 {
		t.Fatalf("Less(100) count = %d", res.Count())
	}
	if res := ix.QueryWhere(crackdb.GreaterEq(9_900)); res.Count() != 100 {
		t.Fatalf("GreaterEq count = %d", res.Count())
	}
}

func TestFacadeTable(t *testing.T) {
	n := 5000
	a := crackdb.MakeData(int64(n), 8)
	b := make([]int64, n)
	for i, v := range a {
		b[i] = v * 3
	}
	tbl, err := crackdb.NewTable(map[string][]int64{"a": a, "b": b}, crackdb.DD1R, crackdb.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != n || len(tbl.Columns()) != 2 {
		t.Fatal("table shape wrong")
	}
	sel, err := tbl.Select("a", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 100 {
		t.Fatalf("select returned %d", len(sel))
	}
	proj, err := tbl.SelectProject("a", "b", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range proj {
		sum += v
	}
	var want int64
	for v := int64(100); v < 200; v++ {
		want += v * 3
	}
	if sum != want {
		t.Fatalf("projection sum = %d, want %d", sum, want)
	}
	side, err := tbl.SelectProjectSideways("a", "b", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	sum = 0
	for _, v := range side {
		sum += v
	}
	if sum != want {
		t.Fatalf("sideways sum = %d, want %d", sum, want)
	}
	if tbl.Stats().Touched == 0 {
		t.Fatal("no physical work recorded")
	}
}
