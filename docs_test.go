package crackdb_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	crackdb "repro"
)

// docFiles returns README.md plus every markdown file under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	more, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, more...)
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks is the link checker CI runs over docs/*.md and the
// README: every relative markdown link must point at an existing file
// (external links are out of scope — CI must not depend on the network).
func TestDocLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop in-file anchors
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", file, m[1], err)
			}
		}
	}
}

// TestPaperMapCoversAlgorithms pins the acceptance criterion of
// docs/PAPER_MAP.md: every algorithm spec the library accepts appears in
// the map (inside a table row, which always carries a code reference in
// its Code column).
func TestPaperMapCoversAlgorithms(t *testing.T) {
	body, err := os.ReadFile(filepath.Join("docs", "PAPER_MAP.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, spec := range crackdb.Algorithms() {
		if !strings.Contains(text, "`"+spec+"`") {
			t.Errorf("docs/PAPER_MAP.md does not mention algorithm spec %q", spec)
		}
	}
}

// TestPaperMapCodeReferences keeps the map's file references real: every
// `internal/...` or `cmd/...` path mentioned in the docs must exist in
// the tree.
func TestPaperMapCodeReferences(t *testing.T) {
	pathRef := regexp.MustCompile("`((?:internal|cmd|docs|bench)/[A-Za-z0-9_./-]+)`")
	for _, file := range docFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range pathRef.FindAllStringSubmatch(string(body), -1) {
			if _, err := os.Stat(m[1]); err != nil {
				t.Errorf("%s: references %q, which does not exist", file, m[1])
			}
		}
	}
}
