package crackdb_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	crackdb "repro"
)

// docFiles returns README.md plus every markdown file under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	more, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, more...)
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks is the link checker CI runs over docs/*.md and the
// README: every relative markdown link must point at an existing file
// (external links are out of scope — CI must not depend on the network).
func TestDocLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop in-file anchors
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", file, m[1], err)
			}
		}
	}
}

// TestPaperMapCoversAlgorithms pins the acceptance criterion of
// docs/PAPER_MAP.md: every algorithm spec the library accepts appears in
// the map (inside a table row, which always carries a code reference in
// its Code column).
func TestPaperMapCoversAlgorithms(t *testing.T) {
	body, err := os.ReadFile(filepath.Join("docs", "PAPER_MAP.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, spec := range crackdb.Algorithms() {
		if !strings.Contains(text, "`"+spec+"`") {
			t.Errorf("docs/PAPER_MAP.md does not mention algorithm spec %q", spec)
		}
	}
}

// TestPaperMapCodeReferences keeps the map's file references real: every
// `internal/...` or `cmd/...` path mentioned in the docs must exist in
// the tree.
func TestPaperMapCodeReferences(t *testing.T) {
	pathRef := regexp.MustCompile("`((?:internal|cmd|docs|bench)/[A-Za-z0-9_./-]+)`")
	for _, file := range docFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range pathRef.FindAllStringSubmatch(string(body), -1) {
			if _, err := os.Stat(m[1]); err != nil {
				t.Errorf("%s: references %q, which does not exist", file, m[1])
			}
		}
	}
}

// goSources concatenates every .go file in the tree (tests included) —
// the haystack the drift checks below grep for names in.
func goSources(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			body, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			sb.Write(body)
			sb.WriteByte('\n')
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

var (
	metricName  = regexp.MustCompile(`crack(?:server|cluster)_[a-z_]+`)
	inlineCode  = regexp.MustCompile("`([^`\n]+)`")
	endpointRef = regexp.MustCompile(`/v1/[a-z/]+|/healthz|/debug/metrics`)
	flagRef     = regexp.MustCompile(`(?:^|\s)-([a-z][a-z0-9-]*)`)
)

// TestOperationsDocDrift pins docs/OPERATIONS.md to the code: every
// metric name, endpoint path and CLI flag the runbook mentions must
// still exist — in the metric renderers, the route tables and the flag
// registrations respectively — so the operator reference cannot rot
// silently when code changes.
func TestOperationsDocDrift(t *testing.T) {
	body, err := os.ReadFile(filepath.Join("docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(body)
	src := goSources(t)

	for _, m := range dedup(metricName.FindAllString(doc, -1)) {
		if !strings.Contains(src, m) {
			t.Errorf("docs/OPERATIONS.md names metric %q, which no code exports", m)
		}
	}

	// Endpoints and flags live in inline code spans (fenced blocks are
	// shell transcripts whose tool flags — curl's -X — are out of scope).
	var endpoints, flags []string
	for _, span := range inlineCode.FindAllStringSubmatch(doc, -1) {
		endpoints = append(endpoints, endpointRef.FindAllString(span[1], -1)...)
		for _, f := range flagRef.FindAllStringSubmatch(span[1], -1) {
			flags = append(flags, f[1])
		}
	}
	for _, ep := range dedup(endpoints) {
		if !strings.Contains(src, `"`+ep+`"`) && !strings.Contains(src, ` `+ep+`"`) {
			t.Errorf("docs/OPERATIONS.md names endpoint %q, which no code routes", ep)
		}
	}
	flagDecl := regexp.MustCompile(`flag\.[A-Za-z0-9]+\("([a-z][a-z0-9-]*)"`)
	declared := map[string]bool{}
	for _, m := range flagDecl.FindAllStringSubmatch(src, -1) {
		declared[m[1]] = true
	}
	for _, f := range dedup(flags) {
		if !declared[f] {
			t.Errorf("docs/OPERATIONS.md names flag -%s, which no command registers", f)
		}
	}
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
