// Package crackdb is a Go implementation of stochastic database cracking:
// adaptive, incremental, workload-robust indexing for main-memory
// column-stores, reproducing
//
//	Halim, Idreos, Karras, Yap.
//	"Stochastic Database Cracking: Towards Robust Adaptive Indexing in
//	Main-Memory Column-Stores." PVLDB 5(6), 2012.
//
// A cracking index starts as a plain unsorted array and physically
// reorganizes itself a little with every range query, using the query's
// bounds — and, in the stochastic variants, random pivots — as
// partitioning hints. There is no offline index building step: the first
// query is roughly as cheap as a scan, and performance converges toward a
// full index as a side effect of query processing.
//
// # Quick start
//
// The front door is the DB handle: one predicate-first query API across
// every execution strategy. Concurrency is a construction option, not a
// type you pick at every call site:
//
//	db, err := crackdb.Open(values, crackdb.DD1R)          // single-threaded
//	db, err := crackdb.Open(values, crackdb.DD1R,
//	        crackdb.WithConcurrency(crackdb.Shared))       // goroutine-safe
//	db, err := crackdb.Open(values, crackdb.DD1R,
//	        crackdb.WithConcurrency(crackdb.Sharded(8)))   // partitioned fan-out
//	if err != nil { ... }
//	res, err := db.Query(ctx, crackdb.Between(100, 199))   // 100 <= v <= 199
//	if err != nil { ... }
//	res.ForEach(func(v int64) { ... })
//
// Predicates translate SQL's comparison shapes onto the engine's
// half-open ranges (Between, Range, Less, Greater, Eq, ...), compose with
// And/Or, and scope to a column of a multi-column table with On:
//
//	tbl, err := crackdb.OpenTable(cols, crackdb.DD1R,
//	        crackdb.WithConcurrency(crackdb.Shared))
//	res, err := tbl.Query(ctx, crackdb.Greater(10).And(crackdb.Less(14)).On("ra"))
//
// Every read honors context cancellation — long batches and shard
// fan-outs abort between ranges — and failures wrap sentinel errors
// (ErrUnknownAlgorithm, ErrUpdatesUnsupported, ErrUnknownColumn, ...)
// for errors.Is classification.
//
// Latency-sensitive callers use the allocation-free forms: QueryAppend
// appends into a caller-owned buffer and QueryBatchAppend materializes a
// batch into a reusable BatchBuffer; with warmed buffers, converged
// queries perform zero heap allocations in Single and Shared modes.
//
// # Algorithms
//
// The paper's full algorithm family is available: original cracking
// (Crack), the Scan and Sort baselines, data-driven stochastic cracking
// (DDC, DDR, DD1C, DD1R), stochastic cracking with materialization
// (MDD1R), progressive stochastic cracking (PMDD1R / "P10%"), the
// selective variants (FiftyFifty, FlipCoin, EveryX, ScrackMon,
// SizeSelective), naive random-query injection (RXcrack), and the
// partition/merge hybrids (AICC, AICS, AICC1R, AICS1R).
//
// Use DD1R for the best total cost, PMDD1R for the lowest per-query
// overhead while adapting, and Crack to reproduce the original behavior.
//
// # v1 API
//
// The pre-DB constructors (New, Index.Synchronized, NewSharded, NewTable)
// remain as thin shims over the same execution core and keep working;
// new code should use Open/OpenTable. See the README for a migration
// table.
package crackdb

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/hybrids"
	"repro/internal/updates"
)

// Algorithm names accepted by Open and New. The parameterized families
// also accept spec strings like "pmdd1r-25", "every-4", "scrackmon-10"
// and "r4crack".
const (
	Scan          = "scan"
	Sort          = "sort"
	Crack         = "crack"
	DDC           = "ddc"
	DDR           = "ddr"
	DD1C          = "dd1c"
	DD1R          = "dd1r"
	MDD1R         = "mdd1r"
	PMDD1R        = "pmdd1r-10" // progressive stochastic cracking, P10%
	FiftyFifty    = "fiftyfifty"
	FlipCoin      = "flipcoin"
	SizeSelective = "sizeselective"
	AutoTune      = "autotune" // extension: dynamic algorithm choice (paper §6)
	AICC          = "aicc"
	AICS          = "aics"
	AICC1R        = "aicc1r"
	AICS1R        = "aics1r"
)

// Result is the outcome of a range query. Single-mode queries return a
// contiguous zero-copy view into the cracker column, possibly flanked by
// materialized end pieces, valid until the next query on the same handle;
// the concurrent modes return owned results, safe to retain. Use Count,
// Sum, ForEach, Materialize — or Owned, which is copy-free exactly when
// the result already owns its values.
type Result = core.Result

// NewResult wraps a caller-owned, fully materialized slice of qualifying
// values as a Result (its Owned method returns the slice without
// copying). The concurrent query paths use it; it is exported for
// harnesses that mix hand-built and queried results.
func NewResult(vals []int64) Result { return core.NewOwnedResult(vals) }

// Stats are cumulative physical-cost counters of an index.
type Stats = core.Stats

// Options configure an index; the zero value uses the paper's defaults
// (CrackSize = L1-sized pieces, ProgressiveSize = L2, SwapPct = 10).
type Options = core.Options

// Option customizes index construction.
type Option func(*config)

type config struct {
	core       core.Options
	partitions int
	conc       Concurrency
	groupOpt   exec.BatcherOptions
	groupOn    bool
}

func applyOptions(opts []Option) config {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithSeed fixes the random seed; identical seeds and query sequences
// reproduce identical physical layouts.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.core.Seed = seed }
}

// WithCrackSize sets the piece-size threshold (tuples) for the recursive
// stochastic variants and SizeSelective.
func WithCrackSize(tuples int) Option {
	return func(c *config) { c.core.CrackSize = tuples }
}

// WithProgressiveSize sets the piece-size threshold (tuples) above which
// progressive cracking spreads work across queries.
func WithProgressiveSize(tuples int) Option {
	return func(c *config) { c.core.ProgressiveSize = tuples }
}

// WithSwapBudget sets the progressive swap budget in percent (P1%..P100%).
func WithSwapBudget(pct int) Option {
	return func(c *config) { c.core.SwapPct = pct }
}

// WithRowIDs attaches a row-identifier payload permuted alongside values.
func WithRowIDs() Option {
	return func(c *config) { c.core.TrackRowIDs = true }
}

// WithParallelCrack routes crack operations on pieces of at least
// core.DefaultParallelCrackMin tuples through the chunked parallel
// partition kernel, which partitions on all cores via the process-wide
// worker pool. It applies to values-only columns (WithRowIDs columns keep
// the serial tandem kernels) and preserves every crack's split position
// and per-side multiset exactly; only the physical order of values within
// a side may differ from the serial kernel's. Use
// WithParallelCrackMin to tune the threshold.
func WithParallelCrack() Option {
	return func(c *config) { c.core.ParallelCrackMin = core.DefaultParallelCrackMin }
}

// WithParallelCrackMin enables parallel cracking with an explicit
// piece-size threshold in tuples (see WithParallelCrack); 0 disables.
func WithParallelCrackMin(tuples int) Option {
	return func(c *config) { c.core.ParallelCrackMin = tuples }
}

// WithCoarseInit pre-cuts the column into about p value-ranged pieces at
// build time (coarse-granular initialization): the cuts are real cracks,
// recorded in the cracker index and charged to the index's cost counters,
// so no later query ever pays a full-column crack. Combined with
// WithParallelCrack the pre-cut itself runs on all cores. Snapshot
// restores ignore it — a snapshot already carries its earned refinement.
func WithCoarseInit(p int) Option {
	return func(c *config) { c.core.CoarseInitPieces = p }
}

// WithGroupCommit puts the group-commit batcher in front of the write
// path: concurrent Insert/Delete/ApplyBatch calls enqueue into one
// collector goroutine, which gathers up to batchSize values (flushing
// after at most maxWait) and applies the whole batch under a single
// exclusive lock acquisition — one write-lock handshake per flush
// instead of one per value. Acknowledgement semantics are unchanged: a
// call returns only after its values are applied, so an acknowledged
// write is visible to every later query and snapshot, exactly once.
// batchSize <= 0 and maxWait <= 0 select the defaults (128 values,
// 200µs). Group commit requires a concurrent mode; opening a Single-mode
// DB with it fails with errors.ErrUnsupported.
func WithGroupCommit(batchSize int, maxWait time.Duration) Option {
	return func(c *config) {
		c.groupOn = true
		c.groupOpt.BatchSize = batchSize
		c.groupOpt.MaxWait = maxWait
	}
}

// WithPartitions sets the number of source partitions for the hybrid
// algorithms (ignored by the others).
func WithPartitions(k int) Option {
	return func(c *config) { c.partitions = k }
}

// Index is an adaptive index over a single integer column. Queries refine
// the physical organization as a side effect; there is no build step.
// An Index is not safe for concurrent use.
//
// Index is the Single-mode core behind DB; new code should open a DB
// instead and let WithConcurrency pick the execution strategy.
type Index struct {
	inner bench.Index
	upd   *updates.Index // nil when the algorithm cannot take updates
}

// New builds an adaptive index over values using the named algorithm.
// The slice is owned by the index afterwards and will be reorganized in
// place. Unknown algorithms fail with ErrUnknownAlgorithm.
//
// Deprecated: use Open, which serves the same algorithms behind the
// context-aware, predicate-first DB API.
func New(values []int64, algorithm string, opts ...Option) (*Index, error) {
	cfg := applyOptions(opts)
	ix, err := core.Build(values, algorithm, cfg.core)
	if err == nil {
		u, _ := updates.Wrap(ix)
		return &Index{inner: ix, upd: u}, nil
	}
	if !errors.Is(err, ErrUnknownAlgorithm) {
		return nil, fmt.Errorf("crackdb: %w", err)
	}
	h, herr := hybrids.Build(values, algorithm, hybrids.Options{
		Seed:          cfg.core.Seed,
		CrackSize:     cfg.core.CrackSize,
		NumPartitions: cfg.partitions,
	})
	if herr != nil {
		return nil, fmt.Errorf("crackdb: %w", herr)
	}
	return &Index{inner: h}, nil
}

// Query returns the qualifying tuples for the half-open value range
// [lo, hi), adapting the index as a side effect.
func (ix *Index) Query(lo, hi int64) Result {
	if ix.upd != nil {
		return ix.upd.Query(lo, hi)
	}
	return ix.inner.Query(lo, hi)
}

// Insert queues a value for insertion; it is merged into the column by
// the first query whose range covers it (Ripple merge, [17]). It fails
// with ErrUpdatesUnsupported for algorithms that cannot take updates
// (sorted/hybrid stores).
func (ix *Index) Insert(v int64) error {
	if ix.upd == nil {
		return fmt.Errorf("crackdb: %s: %w", ix.inner.Name(), ErrUpdatesUnsupported)
	}
	ix.upd.Insert(v)
	return nil
}

// Delete queues the removal of one occurrence of v, merged on demand like
// Insert.
func (ix *Index) Delete(v int64) error {
	if ix.upd == nil {
		return fmt.Errorf("crackdb: %s: %w", ix.inner.Name(), ErrUpdatesUnsupported)
	}
	ix.upd.Delete(v)
	return nil
}

// PendingUpdates returns the number of queued, not-yet-merged updates.
func (ix *Index) PendingUpdates() int {
	if ix.upd == nil {
		return 0
	}
	return ix.upd.Pending()
}

// Name returns the algorithm name.
func (ix *Index) Name() string { return ix.inner.Name() }

// Stats returns cumulative physical-cost counters: queries answered,
// tuples touched during reorganization, swaps, cracks and pieces.
func (ix *Index) Stats() Stats { return ix.inner.Stats() }

// Pieces returns the current number of column pieces — a measure of how
// refined the index is.
func (ix *Index) Pieces() int { return ix.inner.Stats().Pieces }

// executor wraps the index in the adaptive execution layer, preferring
// the update-carrying surface when the algorithm has one. The executor
// assumes ownership.
func (ix *Index) executor() *exec.Executor {
	if ix.upd != nil {
		return exec.New(ix.upd)
	}
	// Hybrids (and the sorted baseline) expose no convergence probe; the
	// executor serves them entirely under the exclusive lock.
	return exec.New(ix.inner)
}

// Synchronized wraps the index for concurrent use through the adaptive
// execution layer (internal/exec): converged queries run in parallel under
// a shared lock, reorganizing queries serialize under an exclusive one,
// and results are returned as owned slices. Updatable indexes keep their
// update path — Insert and Delete on the wrapper queue updates under the
// exclusive lock. The returned wrapper assumes ownership; drop the
// unsynchronized Index afterwards.
//
// Deprecated: open the DB with WithConcurrency(Shared) instead.
func (ix *Index) Synchronized() *ConcurrentIndex {
	return &ConcurrentIndex{x: ix.executor()}
}

// Algorithms returns every algorithm spec Open accepts (with
// representative parameters for the parameterized families).
func Algorithms() []string {
	return append(core.Algorithms(), hybrids.Specs()...)
}
