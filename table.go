package crackdb

import "repro/internal/table"

// Table is a column-store table with adaptive indexing at the attribute
// level (paper §2): selections crack only the referenced column; other
// attributes are reconstructed on demand, either through row ids or
// through sideways cracker maps. A Table is not safe for concurrent use.
//
// Deprecated: open the table with OpenTable instead; DB.Query adds
// column-scoped predicates, context cancellation and (with
// WithConcurrency(Shared)) a concurrent per-column execution path. The
// projection APIs (SelectProject, SelectProjectSideways) remain here.
type Table struct {
	t *table.Table
}

// NewTable creates a table from named, equal-length columns. algorithm
// selects the cracking flavor for selection indexes (any core algorithm
// spec, e.g. crackdb.Crack or crackdb.DD1R).
//
// Deprecated: use OpenTable.
func NewTable(cols map[string][]int64, algorithm string, opts ...Option) (*Table, error) {
	cfg := applyOptions(opts)
	t, err := table.New(cols, algorithm, cfg.core)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.t.Rows() }

// Columns returns the column names in deterministic order.
func (t *Table) Columns() []string { return t.t.Columns() }

// Select returns the values of column sel in [lo, hi), adapting sel's
// index as a side effect.
func (t *Table) Select(sel string, lo, hi int64) ([]int64, error) {
	return t.t.Select(sel, lo, hi)
}

// SelectProject answers SELECT proj WHERE lo <= sel < hi using late
// (row-id) tuple reconstruction.
func (t *Table) SelectProject(sel, proj string, lo, hi int64) ([]int64, error) {
	return t.t.SelectProject(sel, proj, lo, hi)
}

// SelectProjectSideways answers the same query through a sideways cracker
// map (the projected attribute physically travels with the selection
// attribute), built lazily per (sel, proj) pair.
func (t *Table) SelectProjectSideways(sel, proj string, lo, hi int64) ([]int64, error) {
	return t.t.SelectProjectSideways(sel, proj, lo, hi)
}

// Stats aggregates physical-cost counters across the table's indexes and
// maps.
func (t *Table) Stats() Stats { return t.t.Stats() }
