package crackdb

import (
	"repro/internal/bench"
	"repro/internal/workload"
)

// Workload generates a deterministic sequence of range queries; see
// Workloads for the available patterns (the paper's Fig. 7 plus Mixed and
// the synthetic SkyServer trace).
type Workload = workload.Generator

// WorkloadParams configure a workload generator: domain size N, planned
// sequence length Q, selectivity S (value units) and Seed.
type WorkloadParams = workload.Params

// NewWorkload builds a workload generator by name ("random", "sequential",
// "zoomin", ..., "skyserver").
func NewWorkload(name string, p WorkloadParams) (Workload, error) {
	return workload.New(name, p)
}

// Workloads lists the available workload names in the paper's Fig. 17
// order.
func Workloads() []string { return workload.Names() }

// MakeData builds the paper's dataset: a seeded random permutation of the
// unique integers [0, n) — with it, the expected result of any range query
// is closed-form, which the test suite exploits for validation.
func MakeData(n int64, seed uint64) []int64 { return bench.MakeData(n, seed) }
