package crackdb

import (
	"context"

	"repro/internal/exec"
)

// The allocation-free form of the query API. Query and QueryBatch return
// owned results, which costs one fresh slice per call; latency-sensitive
// callers on the hot path reuse buffers instead: QueryAppend appends into
// a caller-owned slice, QueryBatchAppend materializes a whole batch into
// a reusable BatchBuffer arena. With warmed buffers, a converged query —
// one whose bounds are exact cracks or fall in pieces too small to split —
// performs zero heap allocations end to end in Single and Shared modes,
// a contract enforced by AllocsPerRun regression tests. (One exception:
// results wide enough to take the parallel bulk copy — megabytes — spend
// a few fixed coordination allocations to copy on all cores.)

// QueryAppend answers the predicate like Query, appending the qualifying
// values to dst and returning it, append-style: the caller owns dst
// before and after. Sharded and table modes answer through their fan-out
// paths and append the result, so they stay correct but allocate
// internally. Multi-range predicates append their ranges in ascending
// order, matching Query's concatenation.
func (db *DB) QueryAppend(ctx context.Context, p Predicate, dst []int64) ([]int64, error) {
	if err := db.check(ctx); err != nil {
		return dst, err
	}
	col, err := db.resolveColumn(p)
	if err != nil {
		return dst, err
	}
	if lo, hi, ok := p.singleRange(); ok {
		if lo >= hi {
			return dst, nil
		}
		return db.appendRange(ctx, col, lo, hi, dst)
	}
	for _, r := range p.rangeList() {
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		dst, err = db.appendRange(ctx, col, r[0], r[1], dst)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// appendRange answers one half-open range on one column, appending into
// dst in the DB's mode.
func (db *DB) appendRange(ctx context.Context, col string, lo, hi int64, dst []int64) ([]int64, error) {
	switch {
	case db.ix != nil:
		res := db.ix.Query(lo, hi)
		return res.Materialize(dst), nil
	case db.x != nil:
		return db.x.QueryAppendCtx(ctx, lo, hi, dst)
	case db.sh != nil:
		vals, err := db.sh.QueryCtx(ctx, lo, hi)
		if err != nil {
			return dst, err
		}
		return append(dst, vals...), nil
	case db.stbl != nil:
		vals, err := db.stbl.Query(ctx, col, lo, hi)
		if err != nil {
			return dst, err
		}
		return append(dst, vals...), nil
	default:
		vals, err := db.tbl.Select(col, lo, hi)
		if err != nil {
			return dst, err
		}
		return append(dst, vals...), nil
	}
}

// BatchBuffer holds the reusable state of DB.QueryBatchAppend: the range
// scratch, per-predicate offsets, result headers and one value arena
// every result is a subslice of. The zero value is ready for use.
type BatchBuffer struct {
	eb     exec.BatchBuffer
	ranges []exec.Range
	out    [][]int64
	offs   [][2]int
	vals   []int64
}

// QueryBatchAppend answers many predicates like QueryBatch, materializing
// every result into bb instead of fresh allocations. Each returned slice
// is a capacity-capped subslice of bb's arena, in input-predicate order,
// valid until bb's next use; callers retaining results longer copy them
// out. Once bb has warmed to the workload's sizes, a batch of converged
// single-range predicates runs allocation-free in Single and Shared
// modes. Batches containing multi-range (Or) predicates, and Sharded or
// table databases, fall back to the allocating batch path internally —
// same answers, fresh slices.
func (db *DB) QueryBatchAppend(ctx context.Context, ps []Predicate, bb *BatchBuffer) ([][]int64, error) {
	if err := db.check(ctx); err != nil {
		return nil, err
	}
	bb.ranges = bb.ranges[:0]
	simple := true
	col := ""
	for i, p := range ps {
		c, err := db.resolveColumn(p)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			col = c
		}
		lo, hi, ok := p.singleRange()
		if !ok || c != col {
			simple = false
			break
		}
		bb.ranges = append(bb.ranges, exec.Range{Lo: lo, Hi: hi})
	}
	if !simple {
		// Multi-range predicates or a cross-column table batch: the
		// stitching belongs to QueryBatch; adopt its owned results.
		results, err := db.QueryBatch(ctx, ps)
		if err != nil {
			return nil, err
		}
		bb.out = bb.out[:0]
		for _, r := range results {
			bb.out = append(bb.out, r.Owned())
		}
		return bb.out, nil
	}

	switch {
	case db.x != nil:
		return db.x.QueryBatchInto(ctx, bb.ranges, &bb.eb)
	case db.ix != nil:
		// Single mode: answer in input order on the caller's goroutine,
		// materializing immediately — a later range may reorganize the
		// column, so views cannot be held across the batch. Offsets stay
		// valid while the arena grows; results are sliced at the end.
		if cap(bb.offs) < len(bb.ranges) {
			bb.offs = make([][2]int, len(bb.ranges))
		}
		bb.offs = bb.offs[:len(bb.ranges)]
		bb.vals = bb.vals[:0]
		for i, r := range bb.ranges {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := len(bb.vals)
			if r.Lo < r.Hi {
				res := db.ix.Query(r.Lo, r.Hi)
				bb.vals = res.Materialize(bb.vals)
			}
			bb.offs[i] = [2]int{start, len(bb.vals)}
		}
		bb.out = bb.out[:0]
		for _, o := range bb.offs {
			bb.out = append(bb.out, bb.vals[o[0]:o[1]:o[1]])
		}
		return bb.out, nil
	default:
		// Sharded and single-column-table modes: the fan-out owns its
		// allocations; adopt its owned slices.
		parts, err := db.batchRanges(ctx, col, bb.ranges)
		if err != nil {
			return nil, err
		}
		bb.out = append(bb.out[:0], parts...)
		return bb.out, nil
	}
}
