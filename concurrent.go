package crackdb

import (
	"sync"

	"repro/internal/core"
)

// ConcurrentIndex is a goroutine-safe view of an Index. Cracking inverts
// the usual reader/writer economics — every query physically reorganizes
// the column — so access is serialized with a mutex (the paper leaves
// finer-grained concurrency control to future work) and results are
// returned as owned slices, safe to retain across queries.
type ConcurrentIndex struct {
	c *core.Concurrent

	mu     sync.Mutex
	facade *Index // fallback path for hybrids / update-carrying indexes
}

// Query answers [lo, hi) and returns an owned slice of qualifying values.
func (ci *ConcurrentIndex) Query(lo, hi int64) []int64 {
	if ci.c != nil {
		return ci.c.Query(lo, hi)
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	res := ci.facade.Query(lo, hi)
	return res.Materialize(make([]int64, 0, res.Count()))
}

// QueryAggregate answers [lo, hi) returning only (count, sum), skipping
// the copy when the caller needs aggregates.
func (ci *ConcurrentIndex) QueryAggregate(lo, hi int64) (count int, sum int64) {
	if ci.c != nil {
		return ci.c.QueryCount(lo, hi)
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	res := ci.facade.Query(lo, hi)
	return res.Count(), res.Sum()
}

// Stats returns the wrapped index's counters.
func (ci *ConcurrentIndex) Stats() Stats {
	if ci.c != nil {
		return ci.c.Stats()
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	return ci.facade.Stats()
}
