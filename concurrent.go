package crackdb

import "repro/internal/exec"

// QueryRange is one half-open value range [Lo, Hi) of a batched query
// (Range is taken by the predicate constructor).
//
// Deprecated: Predicate is the v2 range vocabulary — DB.QueryBatch takes
// []Predicate directly.
type QueryRange = exec.Range

// ConcurrentIndex is a goroutine-safe view of an Index, backed by the
// unified adaptive execution layer (internal/exec). Cracking inverts the
// usual reader/writer economics — a query may physically reorganize the
// column — but it also converges: once the pieces around a query's bounds
// are exact cracks or too small to be worth splitting, the query
// reorganizes nothing. The executor detects that case with a non-mutating
// probe and serves such queries under a shared lock in parallel;
// reorganizing queries, and queries against index kinds without a probe
// (the partition/merge hybrids), take the exclusive lock. Results are
// returned as owned slices, safe to retain across queries.
//
// Deprecated: open the DB with WithConcurrency(Shared) instead; DB.Query
// adds predicates, context cancellation and the unified Result.
type ConcurrentIndex struct {
	x *exec.Executor
}

// Query answers [lo, hi) and returns an owned slice of qualifying values.
func (ci *ConcurrentIndex) Query(lo, hi int64) []int64 {
	return ci.x.Query(lo, hi)
}

// QueryAggregate answers [lo, hi) returning only (count, sum), skipping
// the copy when the caller needs aggregates.
func (ci *ConcurrentIndex) QueryAggregate(lo, hi int64) (count int, sum int64) {
	return ci.x.QueryAggregate(lo, hi)
}

// QueryBatch answers many ranges with at most two lock acquisitions —
// one shared pass for the converged ranges, one exclusive pass for the
// rest — and returns owned slices in input order.
func (ci *ConcurrentIndex) QueryBatch(ranges []QueryRange) [][]int64 {
	return ci.x.QueryBatch(ranges)
}

// Insert queues a value for insertion (merged by the first covering
// query); it errors for index kinds that cannot take updates.
func (ci *ConcurrentIndex) Insert(v int64) error { return ci.x.Insert(v) }

// Delete queues the removal of one occurrence of v, like Insert.
func (ci *ConcurrentIndex) Delete(v int64) error { return ci.x.Delete(v) }

// Name identifies the wrapped index (e.g. "exec(dd1r)").
func (ci *ConcurrentIndex) Name() string { return ci.x.Name() }

// Stats returns the wrapped index's counters.
func (ci *ConcurrentIndex) Stats() Stats { return ci.x.Stats() }

// PathStats reports how many queries ran under the shared read lock
// versus the exclusive write lock — the adaptivity of the executor,
// observable.
func (ci *ConcurrentIndex) PathStats() (reads, writes int64) {
	return ci.x.PathStats()
}
