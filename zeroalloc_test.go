package crackdb_test

import (
	"context"
	"testing"

	crackdb "repro"
)

// The zero-allocation contract of the converged hot path: once a query's
// bounds are exact cracks (or fall in pieces too small to split), Query
// in Single mode and the Append forms in Single and Shared modes perform
// no heap allocation at all. These are regression tests — the CI bench
// job guards ns/op, these guard allocs/op.

// zeroAllocValues builds a deterministic shuffle of [0, n) without
// importing internal packages.
func zeroAllocValues(n int) []int64 {
	vals := make([]int64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range vals {
		vals[i] = int64(i)
	}
	for i := n - 1; i > 0; i-- {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		j := int(state % uint64(i+1))
		vals[i], vals[j] = vals[j], vals[i]
	}
	return vals
}

const (
	zaN     = 1 << 16
	zaLo    = int64(zaN / 4)
	zaHi    = zaLo + 512
	zaCount = 512
)

// convergedDB opens a DB over shuffled [0, zaN) and runs the benchmark
// range once, so both bounds become exact cracks and every later query on
// it is converged.
func convergedDB(t *testing.T, mode crackdb.Concurrency) *crackdb.DB {
	t.Helper()
	db, err := crackdb.Open(zeroAllocValues(zaN), crackdb.Crack, crackdb.WithConcurrency(mode))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(context.Background(), crackdb.Range(zaLo, zaHi))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != zaCount {
		t.Fatalf("warmup count = %d, want %d", res.Count(), zaCount)
	}
	return db
}

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, allocs)
	}
}

func TestConvergedQueryZeroAllocsSingle(t *testing.T) {
	db := convergedDB(t, crackdb.Single)
	ctx := context.Background()
	p := crackdb.Range(zaLo, zaHi)
	assertZeroAllocs(t, "Single Query", func() {
		res, err := db.Query(ctx, p)
		if err != nil || res.Count() != zaCount {
			t.Fatalf("count=%d err=%v", res.Count(), err)
		}
	})
	buf := make([]int64, 0, zaCount)
	assertZeroAllocs(t, "Single QueryAppend", func() {
		out, err := db.QueryAppend(ctx, p, buf[:0])
		if err != nil || len(out) != zaCount {
			t.Fatalf("len=%d err=%v", len(out), err)
		}
	})
	assertZeroAllocs(t, "Single QueryAggregate", func() {
		agg, err := db.QueryAggregate(ctx, p)
		if err != nil || agg.Count != zaCount {
			t.Fatalf("count=%d err=%v", agg.Count, err)
		}
	})
}

func TestConvergedQueryZeroAllocsShared(t *testing.T) {
	db := convergedDB(t, crackdb.Shared)
	ctx := context.Background()
	p := crackdb.Range(zaLo, zaHi)
	buf := make([]int64, 0, zaCount)
	assertZeroAllocs(t, "Shared QueryAppend", func() {
		out, err := db.QueryAppend(ctx, p, buf[:0])
		if err != nil || len(out) != zaCount {
			t.Fatalf("len=%d err=%v", len(out), err)
		}
	})
	assertZeroAllocs(t, "Shared QueryAggregate", func() {
		agg, err := db.QueryAggregate(ctx, p)
		if err != nil || agg.Count != zaCount {
			t.Fatalf("count=%d err=%v", agg.Count, err)
		}
	})
}

// queryBatchZeroAllocs asserts a converged batch of single-range
// predicates runs allocation-free through a warmed BatchBuffer.
func queryBatchZeroAllocs(t *testing.T, mode crackdb.Concurrency) {
	db := convergedDB(t, mode)
	ctx := context.Background()
	ps := []crackdb.Predicate{
		crackdb.Range(zaLo, zaLo+128),
		crackdb.Range(zaLo+128, zaLo+256),
		crackdb.Range(zaLo+256, zaHi),
	}
	// Converge every batch bound first, then warm the buffer.
	for _, p := range ps {
		if _, err := db.Query(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	var bb crackdb.BatchBuffer
	if _, err := db.QueryBatchAppend(ctx, ps, &bb); err != nil {
		t.Fatal(err)
	}
	assertZeroAllocs(t, mode.String()+" QueryBatchAppend", func() {
		out, err := db.QueryBatchAppend(ctx, ps, &bb)
		if err != nil || len(out) != len(ps) {
			t.Fatalf("len=%d err=%v", len(out), err)
		}
		if len(out[0]) != 128 || len(out[1]) != 128 || len(out[2]) != zaCount-256 {
			t.Fatalf("lens=%d,%d,%d", len(out[0]), len(out[1]), len(out[2]))
		}
	})
}

func TestConvergedQueryBatchZeroAllocsSingle(t *testing.T) {
	queryBatchZeroAllocs(t, crackdb.Single)
}

func TestConvergedQueryBatchZeroAllocsShared(t *testing.T) {
	queryBatchZeroAllocs(t, crackdb.Shared)
}

// TestQueryAppendMatchesQuery pins the Append forms to the canonical
// Query across modes, including multi-range predicates, on a workload
// that mixes converged and reorganizing queries.
func TestQueryAppendMatchesQuery(t *testing.T) {
	ctx := context.Background()
	for _, mode := range []crackdb.Concurrency{crackdb.Single, crackdb.Shared, crackdb.Sharded(4)} {
		db, err := crackdb.Open(zeroAllocValues(zaN), crackdb.DD1R, crackdb.WithConcurrency(mode))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := crackdb.Open(zeroAllocValues(zaN), crackdb.DD1R, crackdb.WithConcurrency(mode))
		if err != nil {
			t.Fatal(err)
		}
		preds := []crackdb.Predicate{
			crackdb.Range(10, 500),
			crackdb.Range(100, 200).Or(crackdb.Range(1000, 1100)),
			crackdb.Range(10, 500), // now converged
			crackdb.Range(zaN/2, zaN/2+3000),
		}
		var buf []int64
		for i, p := range preds {
			buf, err = db.QueryAppend(ctx, p, buf[:0])
			if err != nil {
				t.Fatal(err)
			}
			res, err := ref.Query(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(buf) != res.Count() {
				t.Fatalf("%s pred %d: append len %d, query count %d", mode, i, len(buf), res.Count())
			}
			var sum int64
			for _, v := range buf {
				sum += v
			}
			if sum != res.Sum() {
				t.Fatalf("%s pred %d: append sum %d, query sum %d", mode, i, sum, res.Sum())
			}
		}
	}
}
