package crackdb_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	crackdb "repro"
)

func sumRange(lo, hi int64) int64 {
	var s int64
	for v := lo; v < hi; v++ {
		s += v
	}
	return s
}

// allModes opens one DB per concurrency mode over the same dataset.
func allModes(t *testing.T, n int64, algo string) map[string]*crackdb.DB {
	t.Helper()
	dbs := make(map[string]*crackdb.DB)
	for name, mode := range map[string]crackdb.Concurrency{
		"single":  crackdb.Single,
		"shared":  crackdb.Shared,
		"sharded": crackdb.Sharded(4),
	} {
		db, err := crackdb.Open(crackdb.MakeData(n, 33), algo,
			crackdb.WithSeed(34), crackdb.WithConcurrency(mode))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dbs[name] = db
	}
	return dbs
}

func TestDBQueryAllModes(t *testing.T) {
	const n = 40_000
	ctx := context.Background()
	for name, db := range allModes(t, n, crackdb.DD1R) {
		res, err := db.Query(ctx, crackdb.Range(1000, 2000))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Count() != 1000 || res.Sum() != sumRange(1000, 2000) {
			t.Fatalf("%s: count=%d sum=%d", name, res.Count(), res.Sum())
		}
		// The Owned escape hatch returns a retainable slice in every mode.
		vals := res.Owned()
		if len(vals) != 1000 {
			t.Fatalf("%s: owned len=%d", name, len(vals))
		}
		// Predicate shapes all translate.
		agg, err := db.QueryAggregate(ctx, crackdb.Between(100, 199))
		if err != nil || agg.Count != 100 || agg.Sum != sumRange(100, 200) {
			t.Fatalf("%s: aggregate %+v err=%v", name, agg, err)
		}
		// Empty predicate answers empty, no error.
		res, err = db.Query(ctx, crackdb.Greater(10).And(crackdb.Less(5)))
		if err != nil || res.Count() != 0 {
			t.Fatalf("%s: empty predicate count=%d err=%v", name, res.Count(), err)
		}
		if db.Rows() != n || db.Name() == "" {
			t.Fatalf("%s: rows=%d name=%q", name, db.Rows(), db.Name())
		}
		if db.Stats().Queries == 0 {
			t.Fatalf("%s: no queries recorded", name)
		}
	}
}

func TestDBMultiRangeOr(t *testing.T) {
	ctx := context.Background()
	p := crackdb.Range(100, 110).Or(crackdb.Range(5000, 5010)).Or(crackdb.Eq(42))
	want := sumRange(100, 110) + sumRange(5000, 5010) + 42
	for name, db := range allModes(t, 20_000, crackdb.Crack) {
		res, err := db.Query(ctx, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Count() != 21 || res.Sum() != want {
			t.Fatalf("%s: multi-range count=%d sum=%d want sum %d", name, res.Count(), res.Sum(), want)
		}
		// Multi-range results come back grouped in ascending range order
		// (values within a range stay in storage order).
		vals := res.Owned()
		if vals[0] != 42 {
			t.Fatalf("%s: order broken: %v", name, vals)
		}
		for i, v := range vals[1:] {
			if i < 10 && (v < 100 || v >= 110) || i >= 10 && (v < 5000 || v >= 5010) {
				t.Fatalf("%s: order broken at %d: %v", name, i+1, vals)
			}
		}
		agg, err := db.QueryAggregate(ctx, p)
		if err != nil || agg.Count != 21 || agg.Sum != want {
			t.Fatalf("%s: multi-range aggregate %+v err=%v", name, agg, err)
		}
	}
}

func TestDBQueryBatch(t *testing.T) {
	ctx := context.Background()
	ps := []crackdb.Predicate{
		crackdb.Range(10, 20),
		crackdb.Eq(500).Or(crackdb.Eq(700)),
		crackdb.Greater(20).And(crackdb.Less(5)), // empty
		crackdb.Between(900, 909),
	}
	for name, db := range allModes(t, 10_000, crackdb.DD1R) {
		out, err := db.QueryBatch(ctx, ps)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) != 4 {
			t.Fatalf("%s: %d results", name, len(out))
		}
		if out[0].Count() != 10 || out[0].Sum() != sumRange(10, 20) {
			t.Fatalf("%s: batch[0] count=%d", name, out[0].Count())
		}
		if out[1].Count() != 2 || out[1].Sum() != 1200 {
			t.Fatalf("%s: batch[1] count=%d sum=%d", name, out[1].Count(), out[1].Sum())
		}
		if out[2].Count() != 0 {
			t.Fatalf("%s: batch[2] not empty", name)
		}
		if out[3].Count() != 10 || out[3].Sum() != sumRange(900, 910) {
			t.Fatalf("%s: batch[3] count=%d", name, out[3].Count())
		}
	}
}

func TestDBUpdatesAllModes(t *testing.T) {
	ctx := context.Background()
	for name, db := range allModes(t, 10_000, crackdb.Crack) {
		if _, err := db.Query(ctx, crackdb.Range(2000, 3000)); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(2500); err != nil {
			t.Fatalf("%s: insert: %v", name, err)
		}
		if err := db.Delete(2600); err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
		if db.PendingUpdates() != 2 {
			t.Fatalf("%s: pending=%d", name, db.PendingUpdates())
		}
		res, err := db.Query(ctx, crackdb.Range(2400, 2700))
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != 300 { // +1 insert, -1 delete
			t.Fatalf("%s: count after updates = %d, want 300", name, res.Count())
		}
		if db.PendingUpdates() != 0 {
			t.Fatalf("%s: updates not merged", name)
		}
	}
	// The sorted baseline cannot take updates, in any mode.
	db, err := crackdb.Open(crackdb.MakeData(1000, 35), crackdb.Sort,
		crackdb.WithConcurrency(crackdb.Shared))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(1); !errors.Is(err, crackdb.ErrUpdatesUnsupported) {
		t.Fatalf("sort insert error = %v", err)
	}
}

func TestDBSnapshotModes(t *testing.T) {
	ctx := context.Background()
	dbs := allModes(t, 10_000, crackdb.DD1R)
	for _, name := range []string{"single", "shared", "sharded"} {
		db := dbs[name]
		if _, err := db.Query(ctx, crackdb.Range(100, 5000)); err != nil {
			t.Fatal(err)
		}
		snap, err := db.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot: %v", name, err)
		}
		// Every source mode restores into every target mode, including a
		// shard count different from the source layout.
		for tname, target := range map[string]crackdb.Concurrency{
			"single":    crackdb.Single,
			"shared":    crackdb.Shared,
			"sharded-4": crackdb.Sharded(4), // the source sharded layout
			"sharded-3": crackdb.Sharded(3), // re-cut along new bounds
		} {
			restored, err := crackdb.OpenSnapshot(snap, crackdb.Crack,
				crackdb.WithConcurrency(target))
			if err != nil {
				t.Fatalf("%s->%s: restore: %v", name, tname, err)
			}
			res, err := restored.Query(ctx, crackdb.Range(100, 200))
			if err != nil || res.Count() != 100 {
				t.Fatalf("%s->%s: restored count=%d err=%v", name, tname, res.Count(), err)
			}
		}
		// Pending updates are captured with the snapshot and restored; only
		// the strict variant refuses, with the sentinel.
		if err := db.Insert(1); err != nil {
			t.Fatal(err)
		}
		if _, err := db.SnapshotStrict(); !errors.Is(err, crackdb.ErrPendingUpdates) {
			t.Fatalf("%s: strict snapshot with pending updates: err = %v", name, err)
		}
		withPending, err := db.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot with pending updates: %v", name, err)
		}
		if withPending.Pending() != 1 {
			t.Fatalf("%s: snapshot pending=%d, want 1", name, withPending.Pending())
		}
		requeued, err := crackdb.OpenSnapshot(withPending, crackdb.Crack)
		if err != nil {
			t.Fatalf("%s: restore with pending updates: %v", name, err)
		}
		if n := requeued.PendingUpdates(); n != 1 {
			t.Fatalf("%s: restored pending=%d, want 1", name, n)
		}
	}
}

func TestDBSentinelErrors(t *testing.T) {
	if _, err := crackdb.Open(nil, "not-an-algorithm"); !errors.Is(err, crackdb.ErrUnknownAlgorithm) {
		t.Fatalf("unknown algorithm error = %v", err)
	}
	if _, err := crackdb.Open(nil, "bogus", crackdb.WithConcurrency(crackdb.Sharded(2))); !errors.Is(err, crackdb.ErrUnknownAlgorithm) {
		t.Fatalf("sharded unknown algorithm error = %v", err)
	}
	if _, err := crackdb.OpenTable(map[string][]int64{"a": {1}}, "bogus"); !errors.Is(err, crackdb.ErrUnknownAlgorithm) {
		t.Fatalf("table unknown algorithm error = %v", err)
	}

	// A known algorithm in a mode that cannot run it is "unsupported",
	// not "unknown".
	if _, err := crackdb.Open(crackdb.MakeData(100, 36), crackdb.AICC,
		crackdb.WithConcurrency(crackdb.Sharded(2))); !errors.Is(err, errors.ErrUnsupported) || errors.Is(err, crackdb.ErrUnknownAlgorithm) {
		t.Fatalf("hybrid sharded error = %v", err)
	}

	db, err := crackdb.Open(crackdb.MakeData(100, 36), crackdb.Crack)
	if err != nil {
		t.Fatal(err)
	}
	// A single-column DB rejects column-scoped predicates.
	if _, err := db.Query(context.Background(), crackdb.Eq(1).On("a")); !errors.Is(err, crackdb.ErrUnknownColumn) {
		t.Fatalf("scoped predicate error = %v", err)
	}
	// Closed handles fail every operation with ErrClosed.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(context.Background(), crackdb.Eq(1)); !errors.Is(err, crackdb.ErrClosed) {
		t.Fatalf("query after close error = %v", err)
	}
	if err := db.Insert(1); !errors.Is(err, crackdb.ErrClosed) {
		t.Fatalf("insert after close error = %v", err)
	}
	if err := db.Close(); err != nil { // idempotent, io.Closer-style
		t.Fatalf("double close error = %v", err)
	}
}

func TestDBTableModes(t *testing.T) {
	const n = 20_000
	ctx := context.Background()
	a := crackdb.MakeData(n, 37)
	b := make([]int64, n)
	for i, v := range a {
		b[i] = v * 2
	}
	for _, mode := range []crackdb.Concurrency{crackdb.Single, crackdb.Shared, crackdb.Sharded(4)} {
		db, err := crackdb.OpenTable(map[string][]int64{"a": a, "b": b}, crackdb.DD1R,
			crackdb.WithSeed(38), crackdb.WithConcurrency(mode))
		if err != nil {
			t.Fatal(err)
		}
		if db.Rows() != n || len(db.Columns()) != 2 {
			t.Fatal("table shape wrong")
		}
		res, err := db.Query(ctx, crackdb.Range(100, 200).On("a"))
		if err != nil || res.Count() != 100 || res.Sum() != sumRange(100, 200) {
			t.Fatalf("%v: a count=%d err=%v", mode, res.Count(), err)
		}
		agg, err := db.QueryAggregate(ctx, crackdb.Range(0, 200).On("b"))
		if err != nil || agg.Count != 100 {
			t.Fatalf("%v: b aggregate %+v err=%v", mode, agg, err)
		}
		// Unscoped predicates on a multi-column table are rejected...
		if _, err := db.Query(ctx, crackdb.Eq(1)); !errors.Is(err, crackdb.ErrUnknownColumn) {
			t.Fatalf("%v: unscoped error = %v", mode, err)
		}
		// ...as are unknown columns, and table updates/snapshots.
		if _, err := db.Query(ctx, crackdb.Eq(1).On("zzz")); !errors.Is(err, crackdb.ErrUnknownColumn) {
			t.Fatalf("%v: unknown column error = %v", mode, err)
		}
		// Predicates composed across two different columns are rejected,
		// never silently answered against one of them.
		bad := crackdb.Range(0, 10).On("a").And(crackdb.Range(0, 10).On("b"))
		if _, err := db.Query(ctx, bad); !errors.Is(err, crackdb.ErrUnknownColumn) {
			t.Fatalf("%v: cross-column And error = %v", mode, err)
		}
		bad = crackdb.Eq(1).On("a").Or(crackdb.Eq(2).On("b"))
		if _, err := db.QueryAggregate(ctx, bad); !errors.Is(err, crackdb.ErrUnknownColumn) {
			t.Fatalf("%v: cross-column Or error = %v", mode, err)
		}
		// Unscoped writes on a multi-column table are rejected too; scoped
		// writes land on the named column only.
		if err := db.Insert(1); !errors.Is(err, crackdb.ErrUnknownColumn) {
			t.Fatalf("%v: unscoped table insert error = %v", mode, err)
		}
		if err := db.InsertOn("a", 150); err != nil {
			t.Fatalf("%v: scoped insert error = %v", mode, err)
		}
		if res, err := db.Query(ctx, crackdb.Range(100, 200).On("a")); err != nil || res.Count() != 101 {
			t.Fatalf("%v: a count after insert = %d err=%v", mode, res.Count(), err)
		}
		if res, err := db.Query(ctx, crackdb.Range(200, 400).On("b")); err != nil || res.Count() != 100 {
			t.Fatalf("%v: b unaffected by a-insert, count=%d err=%v", mode, res.Count(), err)
		}
		if err := db.DeleteOn("a", 150); err != nil {
			t.Fatalf("%v: scoped delete error = %v", mode, err)
		}
		// Table snapshots capture per-column state and restore into any
		// table mode (round-trip coverage lives in TestRestoreEquivalence).
		if snap, err := db.Snapshot(); err != nil || !snap.IsTable() {
			t.Fatalf("%v: table snapshot table=%v err=%v", mode, snap.IsTable(), err)
		}
		if sizes, err := db.PieceSizes(); err != nil || len(sizes) == 0 {
			t.Fatalf("%v: table piece sizes %v err=%v", mode, sizes, err)
		}
		// Batches spanning columns stitch correctly.
		out, err := db.QueryBatch(ctx, []crackdb.Predicate{
			crackdb.Range(10, 20).On("a"),
			crackdb.Range(10, 20).On("b"),
		})
		if err != nil || out[0].Count() != 10 || out[1].Count() != 5 {
			t.Fatalf("%v: cross-column batch (%d,%d) err=%v", mode, out[0].Count(), out[1].Count(), err)
		}
		if db.Stats().Queries == 0 {
			t.Fatalf("%v: no stats", mode)
		}
	}
	// A one-column table serves unscoped predicates on its only column.
	db, err := crackdb.OpenTable(map[string][]int64{"only": a}, crackdb.Crack)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := db.Query(ctx, crackdb.Eq(42)); err != nil || res.Count() != 1 {
		t.Fatalf("default column: count=%d err=%v", res.Count(), err)
	}
	// Sharded tables: every column behind k range-partitioned executors.
	sdb, err := crackdb.OpenTable(map[string][]int64{"a": a}, crackdb.Crack,
		crackdb.WithConcurrency(crackdb.Sharded(4)))
	if err != nil {
		t.Fatalf("sharded table error = %v", err)
	}
	if res, err := sdb.Query(ctx, crackdb.Range(0, 100)); err != nil || res.Count() != 100 {
		t.Fatalf("sharded table: count=%d err=%v", res.Count(), err)
	}
	if got := sdb.Name(); got != "table(sharded-4)" {
		t.Fatalf("sharded table name = %q", got)
	}
}

func TestDBConcurrentTraffic(t *testing.T) {
	const n = 30_000
	ctx := context.Background()
	for _, mode := range []crackdb.Concurrency{crackdb.Shared, crackdb.Sharded(4)} {
		db, err := crackdb.Open(crackdb.MakeData(n, 39), crackdb.DD1R,
			crackdb.WithSeed(40), crackdb.WithConcurrency(mode))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan string, 32)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					lo := int64((g*1103 + i*197) % (n - 300))
					switch i % 3 {
					case 0:
						res, err := db.Query(ctx, crackdb.Range(lo, lo+100))
						if err != nil || res.Count() != 100 {
							errs <- "query wrong"
							return
						}
					case 1:
						out, err := db.QueryBatch(ctx, []crackdb.Predicate{
							crackdb.Range(lo, lo+10),
							crackdb.Range(lo+50, lo+60).Or(crackdb.Range(lo+90, lo+100)),
						})
						if err != nil || out[0].Count() != 10 || out[1].Count() != 20 {
							errs <- "batch wrong"
							return
						}
					default:
						agg, err := db.QueryAggregate(ctx, crackdb.Range(lo, lo+100))
						if err != nil || agg.Count != 100 {
							errs <- "aggregate wrong"
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("%v: %s", mode, e)
		}
	}
}

// TestDBCanceledContext covers the acceptance criterion: a canceled
// context aborts queries in every mode, including a sharded QueryBatch
// mid-fan-out.
func TestDBCanceledContext(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for name, db := range allModes(t, 10_000, crackdb.DD1R) {
		if _, err := db.Query(canceled, crackdb.Range(0, 100)); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: query error = %v", name, err)
		}
		if _, err := db.QueryBatch(canceled, []crackdb.Predicate{crackdb.Eq(1)}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: batch error = %v", name, err)
		}
		if _, err := db.QueryAggregate(canceled, crackdb.Range(0, 100)); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: aggregate error = %v", name, err)
		}
	}
}

func TestDBShardedBatchCancelMidFanout(t *testing.T) {
	const n = 2_000_000
	db, err := crackdb.Open(crackdb.MakeData(n, 41), crackdb.Crack,
		crackdb.WithSeed(42), crackdb.WithConcurrency(crackdb.Sharded(8)))
	if err != nil {
		t.Fatal(err)
	}
	// A big batch of wide fresh ranges: every range fans out to all 8
	// shards and cracks, so the batch runs far longer than the cancel
	// delay below.
	ps := make([]crackdb.Predicate, 400)
	for i := range ps {
		lo := int64(i * (n / 500))
		ps[i] = crackdb.Range(lo, lo+n/100)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := db.QueryBatch(ctx, ps)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("batch error = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled batch did not return")
	}
	// The abort must be prompt: the full batch takes far longer than the
	// post-cancel grace we allow here (one in-flight range per shard).
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// The DB stays fully usable after an aborted batch.
	res, err := db.Query(context.Background(), crackdb.Range(1000, 1100))
	if err != nil || res.Count() != 100 {
		t.Fatalf("post-cancel query count=%d err=%v", res.Count(), err)
	}
}
