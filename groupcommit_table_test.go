package crackdb_test

import (
	"context"
	"sync"
	"testing"
	"time"

	crackdb "repro"
)

// TestTableGroupCommit guards the table write path under group commit:
// a Shared (and Sharded) table opened with WithGroupCommit must batch
// concurrent column-scoped writes through the per-column collectors,
// report flush activity in GroupCommitStats, mark timings as Grouped,
// and — the part that matters — still answer every query exactly.
func TestTableGroupCommit(t *testing.T) {
	const n = 8192
	for _, mode := range []struct {
		name string
		conc crackdb.Concurrency
	}{
		{"shared", crackdb.Shared},
		{"sharded-2", crackdb.Sharded(2)},
	} {
		t.Run(mode.name, func(t *testing.T) {
			db, err := crackdb.OpenTable(map[string][]int64{
				"a": crackdb.MakeData(n, 5),
				"b": crackdb.MakeData(n, 6),
			}, crackdb.DD1R, crackdb.WithSeed(7), crackdb.WithConcurrency(mode.conc),
				crackdb.WithGroupCommit(32, 2*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			// 8 writers × 50 inserts, alternating target columns; values
			// land above the initial [0, n) permutation so the expected
			// multiset stays closed-form. One writer also exercises the
			// batch path with mixed inserts and a delete of a base value
			// (deletes apply first, so a same-batch insert survives).
			const writers, perWriter = 8, 50
			ctx := context.Background()
			var wg sync.WaitGroup
			var grouped sync.Once
			sawGrouped := false
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						v := int64(n + w*perWriter + i)
						col := "a"
						if (w+i)%2 == 1 {
							col = "b"
						}
						if i == 0 && w == 0 {
							tm, err := db.ApplyBatchOn(ctx, col, []int64{v, v + 100_000}, []int64{3})
							if err != nil {
								t.Error(err)
								return
							}
							if tm.Grouped {
								grouped.Do(func() { sawGrouped = true })
							}
							continue
						}
						if err := db.InsertOn(col, v); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if !sawGrouped {
				t.Error("ApplyBatchOn timings not marked Grouped under WithGroupCommit")
			}
			st, ok := db.GroupCommitStats()
			if !ok {
				t.Fatal("GroupCommitStats: ok=false on a group-commit table")
			}
			if st.Flushes == 0 || st.Ops < writers*perWriter {
				t.Fatalf("batcher stats %+v: want flushes > 0 and ops >= %d", st, writers*perWriter)
			}

			// Exactness after the batched writes: each column holds its
			// permutation of [0, n) plus the inserts routed to it. Count the
			// routed values per column and compare against full-range
			// aggregates (the query merges all pending updates).
			wantA, wantB := 0, 0
			sumA, sumB := int64(0), int64(0)
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					v := int64(n + w*perWriter + i)
					if (w+i)%2 == 1 {
						wantB++
						sumB += v
					} else {
						wantA++
						sumA += v
					}
				}
			}
			// Writer 0's first op was the batch on column a: one extra
			// insert (v+100_000) and one delete of base value 3.
			wantA += 1 - 1
			sumA += int64(n) + 100_000 - 3
			base := int64(n) * (n - 1) / 2
			for _, c := range []struct {
				col  string
				want int
				sum  int64
			}{{"a", n + wantA, base + sumA}, {"b", n + wantB, base + sumB}} {
				agg, err := db.QueryAggregate(ctx, crackdb.Range(0, 1<<40).On(c.col))
				if err != nil {
					t.Fatal(err)
				}
				if agg.Count != c.want || agg.Sum != c.sum {
					t.Fatalf("column %s: count %d sum %d, want %d/%d",
						c.col, agg.Count, agg.Sum, c.want, c.sum)
				}
			}
			if db.PendingUpdates() != 0 {
				t.Fatalf("%d updates pending after covering queries", db.PendingUpdates())
			}
		})
	}
}
