package crackdb

import "repro/internal/dberr"

// Sentinel errors returned (wrapped) by the crackdb API. Match them with
// errors.Is; the error strings carry context (algorithm spec, column
// name, pending-update counts) and are not part of the API.
var (
	// ErrUnknownAlgorithm: the algorithm spec is not recognized by any
	// builder (see Algorithms for the accepted specs).
	ErrUnknownAlgorithm = dberr.ErrUnknownAlgorithm

	// ErrUpdatesUnsupported: Insert/Delete against an index kind that
	// cannot take updates (the sorted baseline, the partition/merge
	// hybrids) or against a table database.
	ErrUpdatesUnsupported = dberr.ErrUpdatesUnsupported

	// ErrSnapshotUnsupported: Snapshot against an index kind or
	// concurrency mode that cannot serialize its physical state (hybrids,
	// sharded and table databases).
	ErrSnapshotUnsupported = dberr.ErrSnapshotUnsupported

	// ErrUnknownColumn: a predicate or projection names a column the
	// database does not have — including an unscoped predicate against a
	// multi-column table (scope it with Predicate.On) and a column-scoped
	// predicate against a single-column database.
	ErrUnknownColumn = dberr.ErrUnknownColumn

	// ErrClosed: an operation on a DB handle after Close.
	ErrClosed = dberr.ErrClosed
)
