package crackdb

import "repro/internal/dberr"

// Sentinel errors returned (wrapped) by the crackdb API. Match them with
// errors.Is; the error strings carry context (algorithm spec, column
// name, pending-update counts) and are not part of the API.
var (
	// ErrUnknownAlgorithm: the algorithm spec is not recognized by any
	// builder (see Algorithms for the accepted specs).
	ErrUnknownAlgorithm = dberr.ErrUnknownAlgorithm

	// ErrUpdatesUnsupported: Insert/Delete against an index kind that
	// cannot take updates (the sorted baseline, the partition/merge
	// hybrids) or against a table database.
	ErrUpdatesUnsupported = dberr.ErrUpdatesUnsupported

	// ErrSnapshotUnsupported: Snapshot against an index kind that cannot
	// serialize its physical state (hybrids, table databases), or a
	// restore that cannot honor the snapshot's contents (merging sharded
	// row-id payloads into a different layout). All single-column
	// concurrency modes — Single, Shared and Sharded — snapshot fine.
	ErrSnapshotUnsupported = dberr.ErrSnapshotUnsupported

	// ErrSnapshotCorrupt: snapshot bytes failed structural decoding or
	// checksum verification (wrong magic, version-bumped, truncated, CRC
	// mismatch). A corrupt snapshot is rejected whole, never loaded
	// partially.
	ErrSnapshotCorrupt = dberr.ErrSnapshotCorrupt

	// ErrPendingUpdates: Snapshot while updates are queued but not yet
	// merged; the queues are not part of the snapshot format, so
	// proceeding would silently lose them. Query the affected ranges to
	// merge first.
	ErrPendingUpdates = dberr.ErrPendingUpdates

	// ErrUnknownColumn: a predicate or projection names a column the
	// database does not have — including an unscoped predicate against a
	// multi-column table (scope it with Predicate.On) and a column-scoped
	// predicate against a single-column database.
	ErrUnknownColumn = dberr.ErrUnknownColumn

	// ErrClosed: an operation on a DB handle after Close.
	ErrClosed = dberr.ErrClosed
)
